//! The PT packet format.
//!
//! The byte layout follows the real Intel PT encoding closely enough that
//! trace sizes and compressibility are realistic:
//!
//! | Packet   | Encoding                                   |
//! |----------|--------------------------------------------|
//! | PAD      | `0x00`                                     |
//! | TNT      | 1 byte, bit0 = 0, up to 6 T/NT bits + stop |
//! | TNT.LONG | `0x02 0xA3` + 6 payload bytes (≤ 47 bits)  |
//! | TIP      | header `0x0D \| ipbytes << 5` + IP bytes   |
//! | TIP.PGE  | header `0x11 \| ipbytes << 5` + IP bytes   |
//! | TIP.PGD  | header `0x01 \| ipbytes << 5` + IP bytes   |
//! | FUP      | header `0x1D \| ipbytes << 5` + IP bytes   |
//! | MODE     | `0x99` + 1 byte                            |
//! | PSB      | `0x02 0x82` ×8 (16 bytes)                  |
//! | PSBEND   | `0x02 0x23`                                |
//! | OVF      | `0x02 0xF3`                                |
//!
//! IP payloads use last-IP compression: the header's `ipbytes` field says how
//! many low-order bytes are present; the remaining high-order bytes are taken
//! from the previously emitted IP.

use serde::{Deserialize, Serialize};

/// Number of TNT bits a short TNT packet can carry.
pub const SHORT_TNT_CAPACITY: usize = 6;
/// Number of TNT bits a long TNT packet can carry.
pub const LONG_TNT_CAPACITY: usize = 47;
/// Byte length of a PSB packet.
pub const PSB_LEN: usize = 16;

/// Escape byte introducing two-byte opcodes.
pub const OPC_ESCAPE: u8 = 0x02;
/// Second byte of PSB (repeated).
pub const OPC_PSB: u8 = 0x82;
/// Second byte of PSBEND.
pub const OPC_PSBEND: u8 = 0x23;
/// Second byte of OVF.
pub const OPC_OVF: u8 = 0xF3;
/// Second byte of a long TNT.
pub const OPC_LONG_TNT: u8 = 0xA3;
/// MODE packet opcode.
pub const OPC_MODE: u8 = 0x99;
/// PAD packet opcode.
pub const OPC_PAD: u8 = 0x00;

/// Low 5 bits of a TIP header.
pub const TIP_BASE: u8 = 0x0D;
/// Low 5 bits of a TIP.PGE header.
pub const TIP_PGE_BASE: u8 = 0x11;
/// Low 5 bits of a TIP.PGD header.
pub const TIP_PGD_BASE: u8 = 0x01;
/// Low 5 bits of a FUP header.
pub const FUP_BASE: u8 = 0x1D;

/// How many low-order IP bytes each `ipbytes` code carries.
pub const IP_BYTES_BY_CODE: [usize; 7] = [0, 2, 4, 6, 8, 0, 8];

/// A decoded PT packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// Padding (alignment filler).
    Pad,
    /// Stream synchronisation boundary.
    Psb,
    /// End of the PSB+ header group.
    PsbEnd,
    /// The hardware dropped packets here.
    Overflow,
    /// Taken/not-taken bits for consecutive conditional branches, oldest
    /// first.
    Tnt {
        /// The bits, oldest branch first (`true` = taken).
        bits: Vec<bool>,
    },
    /// Target of an indirect branch / return.
    Tip {
        /// Reconstructed full instruction pointer.
        ip: u64,
    },
    /// Tracing resumed (e.g. after a filtered region).
    TipPge {
        /// Instruction pointer where tracing resumed.
        ip: u64,
    },
    /// Tracing paused.
    TipPgd {
        /// Instruction pointer where tracing paused.
        ip: u64,
    },
    /// Flow-update packet (source IP for asynchronous events).
    Fup {
        /// The IP carried by the packet.
        ip: u64,
    },
    /// Execution-mode packet.
    Mode {
        /// Raw mode payload byte.
        payload: u8,
    },
}

impl Packet {
    /// A short human-readable mnemonic matching `perf script` output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Packet::Pad => "PAD",
            Packet::Psb => "PSB",
            Packet::PsbEnd => "PSBEND",
            Packet::Overflow => "OVF",
            Packet::Tnt { .. } => "TNT",
            Packet::Tip { .. } => "TIP",
            Packet::TipPge { .. } => "TIP.PGE",
            Packet::TipPgd { .. } => "TIP.PGD",
            Packet::Fup { .. } => "FUP",
            Packet::Mode { .. } => "MODE",
        }
    }
}

/// Chooses the smallest last-IP compression code able to represent `ip`
/// relative to `last_ip`. Returns `(code, payload_byte_count)`.
pub fn ip_compression(last_ip: u64, ip: u64) -> (u8, usize) {
    if ip == last_ip {
        (0, 0)
    } else if ip >> 16 == last_ip >> 16 {
        (1, 2)
    } else if ip >> 32 == last_ip >> 32 {
        (2, 4)
    } else if ip >> 48 == last_ip >> 48 {
        (3, 6)
    } else {
        (6, 8)
    }
}

/// Reconstructs a full IP from `payload` low-order bytes and the previous IP.
pub fn ip_decompress(last_ip: u64, code: u8, payload: &[u8]) -> u64 {
    let n = payload.len();
    debug_assert_eq!(n, IP_BYTES_BY_CODE[code as usize]);
    if n == 0 {
        return last_ip;
    }
    let mut low = 0u64;
    for (i, &b) in payload.iter().enumerate() {
        low |= (b as u64) << (8 * i);
    }
    if n == 8 {
        low
    } else {
        let keep_mask = u64::MAX << (8 * n as u32);
        (last_ip & keep_mask) | low
    }
}

/// Byte length of the packet frame starting at `bytes[0]`, or `None` if the
/// slice ends before the frame does (a partial frame).
///
/// Packet framing is context-free: every packet's length is determined by
/// its header byte (plus the escape's second byte), never by the last-IP
/// decompression state — which is what lets AUX consumers cut a stream at
/// packet boundaries without decoding it. A PSB is framed as individual
/// `0x02 0x82` pairs (the decoder coalesces adjacent pairs); unknown
/// headers are framed at their minimum length so a scan over corrupt data
/// still makes progress.
pub fn frame_len(bytes: &[u8]) -> Option<usize> {
    let byte = *bytes.first()?;
    if byte == OPC_PAD {
        return Some(1);
    }
    if byte == OPC_ESCAPE {
        let second = *bytes.get(1)?;
        let len = if second == OPC_LONG_TNT { 8 } else { 2 };
        return (bytes.len() >= len).then_some(len);
    }
    if byte == OPC_MODE {
        return (bytes.len() >= 2).then_some(2);
    }
    if byte & 1 == 0 {
        // Short TNT.
        return Some(1);
    }
    // IP packet family; code 7 is unknown, framed as the header alone.
    let nbytes = IP_BYTES_BY_CODE
        .get((byte >> 5) as usize)
        .copied()
        .unwrap_or(0);
    (bytes.len() > nbytes).then_some(1 + nbytes)
}

/// Length of the longest prefix of `bytes` that ends on a packet-frame
/// boundary; the remainder is a partial frame a consumer must carry until
/// the missing bytes arrive.
pub fn complete_frame_prefix(bytes: &[u8]) -> usize {
    let mut pos = 0;
    while pos < bytes.len() {
        match frame_len(&bytes[pos..]) {
            Some(len) => pos += len,
            None => break,
        }
    }
    pos
}

/// The 4-byte prefix of a PSB run a decoder scans for when resynchronising.
pub const PSB_PATTERN: [u8; 4] = [OPC_ESCAPE, OPC_PSB, OPC_ESCAPE, OPC_PSB];

/// Broadcasts a byte into every lane of a `u64` word.
const fn broadcast(byte: u8) -> u64 {
    0x0101_0101_0101_0101u64.wrapping_mul(byte as u64)
}

/// Offset of the first PSB pattern (`0x02 0x82 0x02 0x82`) in `bytes`, the
/// point a decoder can (re-)synchronise at.
///
/// Word-at-a-time scan: each 8-byte word is tested for a `0x82` byte with
/// the swar zero-byte trick, so garbage between corruption and the next
/// PSB is skipped eight bytes per iteration instead of one. Keying the
/// filter on `0x82` rather than the `0x02` escape matters on real branch
/// streams: `0x02` is also a valid short-TNT byte (≈12% of stream bytes on
/// the bench workload) while `0x82` essentially only occurs inside PSB
/// runs (≈0.2%), so one marker trick per word is both necessary and
/// sufficient. A flagged byte is the pattern's offset-1 (or offset-3)
/// lane, so the candidate start is one before it; candidates are verified
/// against the full 4-byte pattern (the marker can flag false candidates;
/// it never misses one), so the result is byte-for-byte what the naive
/// scan returns.
pub fn find_psb(bytes: &[u8]) -> Option<usize> {
    find_psb_from(bytes, 0)
}

/// [`find_psb`] restricted to offsets `>= start` (still indexing into the
/// full slice) — the incremental window scanner re-scans only the unseen
/// suffix plus a 3-byte overlap.
pub fn find_psb_from(bytes: &[u8], start: usize) -> Option<usize> {
    let n = bytes.len();
    if n < 4 || start + 4 > n {
        return None;
    }
    // Zero-byte trick: one 0x80 marker bit per lane of `word` that equals
    // `0x82`.
    #[inline(always)]
    fn psb_markers(word: u64) -> u64 {
        let xored = word ^ broadcast(OPC_PSB);
        xored.wrapping_sub(broadcast(0x01)) & !xored & broadcast(0x80)
    }
    // Verifies every flagged lane of `markers` (bit 7 of lane k set ⇒ byte
    // `base + k` is 0x82, i.e. a pattern's offset-1 or offset-3 lane)
    // against the full pattern one byte earlier. Ascending marker order
    // keeps the first match first: a pattern at `s` always flags `s + 1`.
    #[cold]
    fn confirm(bytes: &[u8], start: usize, base: usize, mut markers: u64) -> Option<usize> {
        while markers != 0 {
            let flagged = base + (markers.trailing_zeros() / 8) as usize;
            if let Some(candidate) = flagged.checked_sub(1) {
                if candidate >= start
                    && candidate + 4 <= bytes.len()
                    && bytes[candidate..candidate + 4] == PSB_PATTERN
                {
                    return Some(candidate);
                }
            }
            markers &= markers - 1;
        }
        None
    }
    let mut i = start;
    // Two words per iteration: candidate-free spans (the common case)
    // burn one branch per 16 bytes.
    while i + 16 <= n {
        let w0 = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let w1 = u64::from_le_bytes(bytes[i + 8..i + 16].try_into().unwrap());
        let m0 = psb_markers(w0);
        let m1 = psb_markers(w1);
        if m0 | m1 != 0 {
            if let Some(found) = confirm(bytes, start, i, m0) {
                return Some(found);
            }
            if let Some(found) = confirm(bytes, start, i + 8, m1) {
                return Some(found);
            }
        }
        i += 16;
    }
    if i + 8 <= n {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        if let Some(found) = confirm(bytes, start, i, psb_markers(w)) {
            return Some(found);
        }
        i += 8;
    }
    // The word loop proves patterns starting before `i - 1` absent (their
    // offset-1 lane was a scanned marker position); a pattern starting at
    // `i - 1` flags only at `i`, which no word covered, so the tail
    // re-checks from one byte back.
    let mut i = i.saturating_sub(1).max(start);
    while i + 4 <= n {
        if bytes[i..i + 4] == PSB_PATTERN {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// The byte-at-a-time reference scan [`find_psb`] replaced — kept for the
/// scan micro-bench and the differential tests.
pub fn find_psb_naive(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == PSB_PATTERN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct_for_tip_family() {
        assert_eq!(Packet::Tip { ip: 0 }.mnemonic(), "TIP");
        assert_eq!(Packet::TipPge { ip: 0 }.mnemonic(), "TIP.PGE");
        assert_eq!(Packet::TipPgd { ip: 0 }.mnemonic(), "TIP.PGD");
        assert_eq!(Packet::Fup { ip: 0 }.mnemonic(), "FUP");
    }

    #[test]
    fn ip_compression_prefers_short_forms() {
        assert_eq!(ip_compression(0x1234, 0x1234), (0, 0));
        assert_eq!(ip_compression(0x0040_1000, 0x0040_2000), (1, 2));
        assert_eq!(ip_compression(0x7f00_0040_1000, 0x7f00_0140_2000), (2, 4));
        assert_eq!(
            ip_compression(0xaaaa_7f00_0040_1000, 0xaaaa_0100_0040_1000),
            (3, 6)
        );
        assert_eq!(ip_compression(0, 0xffff_ffff_ffff_ffff), (6, 8));
    }

    #[test]
    fn frame_lengths_match_the_wire_format() {
        assert_eq!(frame_len(&[OPC_PAD]), Some(1));
        assert_eq!(frame_len(&[0b0000_0110]), Some(1)); // short TNT
        assert_eq!(frame_len(&[OPC_MODE, 0x01]), Some(2));
        assert_eq!(frame_len(&[OPC_ESCAPE, OPC_PSB]), Some(2)); // one PSB pair
        assert_eq!(frame_len(&[OPC_ESCAPE, OPC_PSBEND]), Some(2));
        assert_eq!(frame_len(&[OPC_ESCAPE, OPC_OVF]), Some(2));
        assert_eq!(
            frame_len(&[OPC_ESCAPE, OPC_LONG_TNT, 0, 0, 0, 0, 0, 1]),
            Some(8)
        );
        // TIP with 2 payload bytes: header code 1.
        assert_eq!(frame_len(&[TIP_BASE | (1 << 5), 0xAA, 0xBB]), Some(3));
    }

    #[test]
    fn partial_frames_are_detected() {
        assert_eq!(frame_len(&[]), None);
        assert_eq!(frame_len(&[OPC_ESCAPE]), None);
        assert_eq!(frame_len(&[OPC_MODE]), None);
        assert_eq!(frame_len(&[OPC_ESCAPE, OPC_LONG_TNT, 0, 0]), None);
        assert_eq!(frame_len(&[TIP_BASE | (1 << 5), 0xAA]), None);
    }

    #[test]
    fn complete_frame_prefix_stops_at_partial_tail() {
        // PAD, MODE, then a TIP missing its last payload byte.
        let bytes = [OPC_PAD, OPC_MODE, 0x01, TIP_BASE | (1 << 5), 0xAA];
        assert_eq!(complete_frame_prefix(&bytes), 3);
        // A fully framed stream consumes everything.
        assert_eq!(complete_frame_prefix(&bytes[..3]), 3);
        assert_eq!(complete_frame_prefix(&[]), 0);
    }

    #[test]
    fn find_psb_locates_the_sync_pattern() {
        let mut bytes = vec![0xAAu8, 0xBB, 0xCC];
        for _ in 0..2 {
            bytes.push(OPC_ESCAPE);
            bytes.push(OPC_PSB);
        }
        assert_eq!(find_psb(&bytes), Some(3));
        assert_eq!(find_psb(&bytes[..4]), None);
        assert_eq!(find_psb(&[]), None);
    }

    #[test]
    fn swar_scan_matches_naive_scan_at_every_alignment() {
        // The pattern placed at every offset of a buffer long enough to
        // exercise the word loop, the tail loop and the boundary between
        // them — swar and naive must agree exactly.
        for fill in [0x00u8, 0x02, 0x82, 0xAB] {
            for offset in 0..40 {
                let mut bytes = vec![fill; 48];
                bytes[offset..offset + 4].copy_from_slice(&PSB_PATTERN);
                assert_eq!(
                    find_psb(&bytes),
                    find_psb_naive(&bytes),
                    "fill {fill:#x} offset {offset}"
                );
                for cut in [offset + 1, offset + 3, bytes.len() - 1] {
                    assert_eq!(
                        find_psb(&bytes[..cut]),
                        find_psb_naive(&bytes[..cut]),
                        "fill {fill:#x} offset {offset} cut {cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn swar_scan_matches_naive_scan_on_escape_dense_noise() {
        // A deterministic pseudo-random byte soup biased toward 0x02/0x82 so
        // the candidate-verification path (false markers, partial pairs) is
        // hit constantly.
        let mut state = 0x9E37_79B9u32;
        let mut bytes = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            bytes.push(match state >> 29 {
                0 | 1 => OPC_ESCAPE,
                2 | 3 => OPC_PSB,
                _ => (state >> 13) as u8,
            });
        }
        for start in 0..64 {
            assert_eq!(
                find_psb(&bytes[start..]),
                find_psb_naive(&bytes[start..]),
                "start {start}"
            );
        }
        assert_eq!(
            find_psb_from(&bytes, 9),
            find_psb_naive(&bytes[9..]).map(|i| i + 9)
        );
    }

    #[test]
    fn find_psb_from_skips_earlier_matches() {
        let mut bytes = vec![0u8; 64];
        bytes[8..12].copy_from_slice(&PSB_PATTERN);
        bytes[40..44].copy_from_slice(&PSB_PATTERN);
        assert_eq!(find_psb_from(&bytes, 0), Some(8));
        assert_eq!(find_psb_from(&bytes, 9), Some(40));
        assert_eq!(find_psb_from(&bytes, 41), None);
    }

    #[test]
    fn ip_roundtrip_through_compression() {
        let cases = [
            (0x0040_1000u64, 0x0040_2000u64),
            (0x7f00_0040_1000, 0x7f00_0140_2000),
            (0, 0xdead_beef_cafe_f00d),
            (0x5555, 0x5555),
        ];
        for (last, ip) in cases {
            let (code, n) = ip_compression(last, ip);
            let payload: Vec<u8> = ip.to_le_bytes()[..n].to_vec();
            assert_eq!(ip_decompress(last, code, &payload), ip);
        }
    }
}
