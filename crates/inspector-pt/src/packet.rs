//! The PT packet format.
//!
//! The byte layout follows the real Intel PT encoding closely enough that
//! trace sizes and compressibility are realistic:
//!
//! | Packet   | Encoding                                   |
//! |----------|--------------------------------------------|
//! | PAD      | `0x00`                                     |
//! | TNT      | 1 byte, bit0 = 0, up to 6 T/NT bits + stop |
//! | TNT.LONG | `0x02 0xA3` + 6 payload bytes (≤ 47 bits)  |
//! | TIP      | header `0x0D \| ipbytes << 5` + IP bytes   |
//! | TIP.PGE  | header `0x11 \| ipbytes << 5` + IP bytes   |
//! | TIP.PGD  | header `0x01 \| ipbytes << 5` + IP bytes   |
//! | FUP      | header `0x1D \| ipbytes << 5` + IP bytes   |
//! | MODE     | `0x99` + 1 byte                            |
//! | PSB      | `0x02 0x82` ×8 (16 bytes)                  |
//! | PSBEND   | `0x02 0x23`                                |
//! | OVF      | `0x02 0xF3`                                |
//!
//! IP payloads use last-IP compression: the header's `ipbytes` field says how
//! many low-order bytes are present; the remaining high-order bytes are taken
//! from the previously emitted IP.

use serde::{Deserialize, Serialize};

/// Number of TNT bits a short TNT packet can carry.
pub const SHORT_TNT_CAPACITY: usize = 6;
/// Number of TNT bits a long TNT packet can carry.
pub const LONG_TNT_CAPACITY: usize = 47;
/// Byte length of a PSB packet.
pub const PSB_LEN: usize = 16;

/// Escape byte introducing two-byte opcodes.
pub const OPC_ESCAPE: u8 = 0x02;
/// Second byte of PSB (repeated).
pub const OPC_PSB: u8 = 0x82;
/// Second byte of PSBEND.
pub const OPC_PSBEND: u8 = 0x23;
/// Second byte of OVF.
pub const OPC_OVF: u8 = 0xF3;
/// Second byte of a long TNT.
pub const OPC_LONG_TNT: u8 = 0xA3;
/// MODE packet opcode.
pub const OPC_MODE: u8 = 0x99;
/// PAD packet opcode.
pub const OPC_PAD: u8 = 0x00;

/// Low 5 bits of a TIP header.
pub const TIP_BASE: u8 = 0x0D;
/// Low 5 bits of a TIP.PGE header.
pub const TIP_PGE_BASE: u8 = 0x11;
/// Low 5 bits of a TIP.PGD header.
pub const TIP_PGD_BASE: u8 = 0x01;
/// Low 5 bits of a FUP header.
pub const FUP_BASE: u8 = 0x1D;

/// How many low-order IP bytes each `ipbytes` code carries.
pub const IP_BYTES_BY_CODE: [usize; 7] = [0, 2, 4, 6, 8, 0, 8];

/// A decoded PT packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// Padding (alignment filler).
    Pad,
    /// Stream synchronisation boundary.
    Psb,
    /// End of the PSB+ header group.
    PsbEnd,
    /// The hardware dropped packets here.
    Overflow,
    /// Taken/not-taken bits for consecutive conditional branches, oldest
    /// first.
    Tnt {
        /// The bits, oldest branch first (`true` = taken).
        bits: Vec<bool>,
    },
    /// Target of an indirect branch / return.
    Tip {
        /// Reconstructed full instruction pointer.
        ip: u64,
    },
    /// Tracing resumed (e.g. after a filtered region).
    TipPge {
        /// Instruction pointer where tracing resumed.
        ip: u64,
    },
    /// Tracing paused.
    TipPgd {
        /// Instruction pointer where tracing paused.
        ip: u64,
    },
    /// Flow-update packet (source IP for asynchronous events).
    Fup {
        /// The IP carried by the packet.
        ip: u64,
    },
    /// Execution-mode packet.
    Mode {
        /// Raw mode payload byte.
        payload: u8,
    },
}

impl Packet {
    /// A short human-readable mnemonic matching `perf script` output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Packet::Pad => "PAD",
            Packet::Psb => "PSB",
            Packet::PsbEnd => "PSBEND",
            Packet::Overflow => "OVF",
            Packet::Tnt { .. } => "TNT",
            Packet::Tip { .. } => "TIP",
            Packet::TipPge { .. } => "TIP.PGE",
            Packet::TipPgd { .. } => "TIP.PGD",
            Packet::Fup { .. } => "FUP",
            Packet::Mode { .. } => "MODE",
        }
    }
}

/// Chooses the smallest last-IP compression code able to represent `ip`
/// relative to `last_ip`. Returns `(code, payload_byte_count)`.
pub fn ip_compression(last_ip: u64, ip: u64) -> (u8, usize) {
    if ip == last_ip {
        (0, 0)
    } else if ip >> 16 == last_ip >> 16 {
        (1, 2)
    } else if ip >> 32 == last_ip >> 32 {
        (2, 4)
    } else if ip >> 48 == last_ip >> 48 {
        (3, 6)
    } else {
        (6, 8)
    }
}

/// Reconstructs a full IP from `payload` low-order bytes and the previous IP.
pub fn ip_decompress(last_ip: u64, code: u8, payload: &[u8]) -> u64 {
    let n = payload.len();
    debug_assert_eq!(n, IP_BYTES_BY_CODE[code as usize]);
    if n == 0 {
        return last_ip;
    }
    let mut low = 0u64;
    for (i, &b) in payload.iter().enumerate() {
        low |= (b as u64) << (8 * i);
    }
    if n == 8 {
        low
    } else {
        let keep_mask = u64::MAX << (8 * n as u32);
        (last_ip & keep_mask) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct_for_tip_family() {
        assert_eq!(Packet::Tip { ip: 0 }.mnemonic(), "TIP");
        assert_eq!(Packet::TipPge { ip: 0 }.mnemonic(), "TIP.PGE");
        assert_eq!(Packet::TipPgd { ip: 0 }.mnemonic(), "TIP.PGD");
        assert_eq!(Packet::Fup { ip: 0 }.mnemonic(), "FUP");
    }

    #[test]
    fn ip_compression_prefers_short_forms() {
        assert_eq!(ip_compression(0x1234, 0x1234), (0, 0));
        assert_eq!(ip_compression(0x0040_1000, 0x0040_2000), (1, 2));
        assert_eq!(ip_compression(0x7f00_0040_1000, 0x7f00_0140_2000), (2, 4));
        assert_eq!(
            ip_compression(0xaaaa_7f00_0040_1000, 0xaaaa_0100_0040_1000),
            (3, 6)
        );
        assert_eq!(ip_compression(0, 0xffff_ffff_ffff_ffff), (6, 8));
    }

    #[test]
    fn ip_roundtrip_through_compression() {
        let cases = [
            (0x0040_1000u64, 0x0040_2000u64),
            (0x7f00_0040_1000, 0x7f00_0140_2000),
            (0, 0xdead_beef_cafe_f00d),
            (0x5555, 0x5555),
        ];
        for (last, ip) in cases {
            let (code, n) = ip_compression(last, ip);
            let payload: Vec<u8> = ip.to_le_bytes()[..n].to_vec();
            assert_eq!(ip_decompress(last, code, &payload), ip);
        }
    }
}
