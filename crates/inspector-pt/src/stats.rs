//! Aggregate PT statistics, used by the overhead breakdown (Figure 6) and the
//! space-overhead table (Figure 9).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-thread (or aggregated) PT tracing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PtStats {
    /// Branch events recorded (conditional + indirect + returns).
    pub branches: u64,
    /// Conditional branches (TNT bits).
    pub conditional_branches: u64,
    /// Packet bytes produced by the encoder.
    pub trace_bytes: u64,
    /// Bytes lost to AUX overflow (full-trace mode).
    pub bytes_lost: u64,
    /// Distinct trace gaps.
    pub gaps: u64,
    /// Wall-clock time spent encoding packets and writing the AUX buffer
    /// (the "OS support for Intel PT" share of the overhead breakdown).
    #[serde(with = "duration_nanos")]
    pub encode_time: Duration,
}

impl PtStats {
    /// Merges another thread's statistics into this one.
    pub fn merge(&mut self, other: &PtStats) {
        self.branches += other.branches;
        self.conditional_branches += other.conditional_branches;
        self.trace_bytes += other.trace_bytes;
        self.bytes_lost += other.bytes_lost;
        self.gaps += other.gaps;
        self.encode_time += other.encode_time;
    }

    /// Average packet bytes per branch (a measure of PT's compression).
    pub fn bytes_per_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.trace_bytes as f64 / self.branches as f64
        }
    }
}

// The offline serde stand-in's derives ignore field adapters, leaving these
// functions unreferenced; they are the real wire format once the actual
// serde is vendored.
#[allow(dead_code)]
mod duration_nanos {
    use std::time::Duration;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_nanos() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_nanos(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = PtStats {
            branches: 10,
            trace_bytes: 100,
            encode_time: Duration::from_micros(3),
            ..PtStats::default()
        };
        let b = PtStats {
            branches: 5,
            conditional_branches: 4,
            bytes_lost: 7,
            gaps: 1,
            trace_bytes: 50,
            encode_time: Duration::from_micros(2),
        };
        a.merge(&b);
        assert_eq!(a.branches, 15);
        assert_eq!(a.conditional_branches, 4);
        assert_eq!(a.trace_bytes, 150);
        assert_eq!(a.bytes_lost, 7);
        assert_eq!(a.gaps, 1);
        assert_eq!(a.encode_time, Duration::from_micros(5));
        assert!((a.bytes_per_branch() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_branch_handles_zero() {
        assert_eq!(PtStats::default().bytes_per_branch(), 0.0);
    }
}
