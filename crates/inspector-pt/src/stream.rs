//! The streaming packet decoder: decode-while-running.
//!
//! [`PacketDecoder`](crate::decode::PacketDecoder) needs the complete byte
//! stream up front; a live session only ever has a *prefix* — AUX chunks
//! arrive at synchronization boundaries and can be cut at arbitrary byte
//! offsets. [`StreamingDecoder`] closes that gap (the hwtracer-style
//! incremental iterator the ROADMAP's "real decoder path" item asks for):
//!
//! * [`push`](StreamingDecoder::push) accepts chunks incrementally; a
//!   packet cut by a chunk boundary is **deferred**, not an error — its
//!   prefix is carried until the missing bytes arrive;
//! * decoding is **demand-paced** in recording mode: a push decodes one
//!   bounded quantum eagerly and [`next_event`](StreamingDecoder::next_event)
//!   pulls further quanta as the consumer drains, so the pending-event
//!   queue stays cache-resident no matter how large the pushed chunks are
//!   (counting mode decodes everything at push — it queues nothing);
//! * corruption surfaces as a single in-band
//!   [`DecodeError::UnknownPacket`], after which the decoder discards
//!   garbage up to the next PSB and resumes (at most one PSB window of
//!   events is lost per corruption);
//! * over any chunking of any well-formed stream the yielded events are
//!   exactly what the batch decoder produces on the concatenation of every
//!   chunk (`tests/streaming_decode.rs` enforces this by property test).
//!
//! The equivalence argument: the carry buffer always holds the
//! still-undecoded suffix, so each pump decodes the same byte sequence the
//! batch decoder would see, with [`StreamStats::bytes_consumed`] bytes
//! already committed and `last_ip` carrying the IP-decompression context
//! across the cut. The only framing divergence a cut can introduce is a
//! PSB run split into two shorter PSB packets — which contribute no events
//! and reset the IP context identically.

use std::collections::VecDeque;

use crate::branch::BranchEvent;
use crate::decode::{packet_events, DecodeError, PacketDecoder};
use crate::packet::find_psb;

/// Counters of one streaming decode session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Bytes handed to [`StreamingDecoder::push`] so far.
    pub bytes_pushed: u64,
    /// Bytes fully consumed (decoded or discarded during resync); the
    /// difference to `bytes_pushed` is the buffered partial tail.
    pub bytes_consumed: u64,
    /// Packets decoded.
    pub packets: u64,
    /// Branch events yielded (all kinds, trace markers included).
    pub events: u64,
    /// Branch events that correspond to retired branches (conditional +
    /// indirect) — the number comparable to a recorder's branch count.
    pub branches: u64,
    /// Decode errors reported in-band (unknown packets; a truncated tail
    /// at [`finish`](StreamingDecoder::finish)).
    pub errors: u64,
    /// Successful PSB re-synchronisations after corruption.
    pub resyncs: u64,
    /// Overflow (OVF) packets decoded — trace gaps where the producer lost
    /// data. Branches counted here cover only the surviving bytes; a
    /// nonzero value marks the stream as *degraded*, not corrupt.
    pub gaps: u64,
}

/// What stopped a decode pass over the carry buffer.
enum Stop {
    /// Every buffered byte decoded.
    Drained,
    /// A partial packet at the tail; wait for more bytes.
    Truncated,
    /// An undecodable header with the offending byte.
    Unknown(u8),
    /// The per-pass byte quantum was reached; more complete packets remain
    /// buffered and the next pump continues where this one stopped.
    Quota,
}

/// Bytes decoded per pump pass in event-recording mode. Bounding the pass
/// keeps the pending-event queue cache-resident no matter how large a chunk
/// is pushed: a 64 KiB push used to queue the chunk's entire event stream
/// (megabytes) before the consumer could drain any of it, which made big
/// chunks *slower* than small ones. Consumers draining via
/// [`StreamingDecoder::next_event`] / [`StreamingDecoder::events`] pull the
/// remaining quanta on demand.
const PUMP_QUANTUM: usize = 4096;

/// Compact the carry buffer only once at least this many consumed bytes
/// would be reclaimed (and the consumed prefix dominates the remainder), so
/// compaction cost stays amortised O(1) per byte.
const COMPACT_AT: usize = 4096;

/// An incremental PT packet decoder fed by AUX chunks.
///
/// Feed bytes with [`push`](Self::push), consume decoded events (and
/// in-band errors) with [`next_event`](Self::next_event) /
/// [`events`](Self::events), and call [`finish`](Self::finish) once the
/// producer is done — only then is a trailing partial packet an error.
#[derive(Debug)]
pub struct StreamingDecoder {
    /// Carry buffer: the not-yet-consumed suffix of the stream lives at
    /// `buf[head..]`. Consuming advances the cursor instead of memmoving the
    /// tail; the prefix is reclaimed lazily (amortised O(1) per byte).
    buf: Vec<u8>,
    /// Start of the live region within `buf`.
    head: usize,
    /// Last-IP decompression context carried across chunk boundaries.
    last_ip: u64,
    /// Decoded events and in-band errors awaiting consumption.
    pending: VecDeque<Result<BranchEvent, DecodeError>>,
    /// Discarding garbage until the next PSB.
    resyncing: bool,
    /// `finish` was called; no more bytes will arrive.
    finished: bool,
    /// When `false`, nothing is queued in `pending`: only [`StreamStats`]
    /// counters are maintained (the ingest workers' mode — the cross-check
    /// needs counts, not the event stream).
    record_events: bool,
    stats: StreamStats,
}

impl Default for StreamingDecoder {
    fn default() -> Self {
        StreamingDecoder {
            buf: Vec::new(),
            head: 0,
            last_ip: 0,
            pending: VecDeque::new(),
            resyncing: false,
            finished: false,
            record_events: true,
            stats: StreamStats::default(),
        }
    }
}

impl StreamingDecoder {
    /// Creates a decoder positioned at the start of a stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a decoder that only maintains [`StreamStats`] counters and
    /// never queues events or in-band errors — no per-event allocation on
    /// the hot path. [`next_event`](Self::next_event) always returns
    /// `None`; read the outcome from [`stats`](Self::stats).
    pub fn counting_only() -> Self {
        StreamingDecoder {
            record_events: false,
            ..Self::default()
        }
    }

    /// Resumes a decoder mid-stream from an explicit carry state: `carry`
    /// becomes the undecoded buffer, `last_ip`/`resyncing` the inherited
    /// context. Statistics start at zero — the caller owns the merge into
    /// whatever stream-order totals it keeps (the windowed reassembler's
    /// serial-replay and finalisation path).
    pub(crate) fn resume(
        carry: Vec<u8>,
        last_ip: u64,
        resyncing: bool,
        record_events: bool,
    ) -> Self {
        StreamingDecoder {
            buf: carry,
            last_ip,
            resyncing,
            record_events,
            ..Self::default()
        }
    }

    /// Rewinds the decoder to its start-of-stream state while keeping the
    /// carry-buffer and pending-queue allocations. The windowed decode path
    /// reuses one decoder per worker across PSB windows this way: on
    /// TNT-dense streams the pending queue grows to a full pump quantum of
    /// events, and reallocating it for every window dominated the
    /// per-window decode profile.
    pub(crate) fn reset(&mut self, record_events: bool) {
        self.buf.clear();
        self.head = 0;
        self.last_ip = 0;
        self.pending.clear();
        self.resyncing = false;
        self.finished = false;
        self.record_events = record_events;
        self.stats = StreamStats::default();
    }

    /// Appends one AUX chunk and decodes. In counting mode everything
    /// decodable is consumed before returning; in recording mode one
    /// [`PUMP_QUANTUM`] is decoded eagerly and the rest is pulled on demand
    /// as [`next_event`](Self::next_event) / [`events`](Self::events) drain
    /// the queue, so the pending-event queue stays small and cache-resident
    /// regardless of chunk size.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish).
    pub fn push(&mut self, chunk: &[u8]) {
        assert!(!self.finished, "push after finish");
        self.stats.bytes_pushed += chunk.len() as u64;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= COMPACT_AT && self.head >= self.buf.len() - self.head {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(chunk);
        self.pump(self.quantum());
    }

    /// Marks the end of the stream and flushes: remaining complete packets
    /// are decoded, a partial packet still buffered becomes an in-band
    /// [`DecodeError::Truncated`], and garbage awaiting a PSB is dropped.
    /// Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.pump(usize::MAX);
        debug_assert_eq!(
            self.head,
            self.buf.len(),
            "finish must drain the carry buffer"
        );
    }

    /// Removes and returns the next decoded event or in-band error, or
    /// `None` when everything currently decodable has been consumed. Pulls
    /// further decode quanta from the carry buffer on demand.
    #[inline]
    pub fn next_event(&mut self) -> Option<Result<BranchEvent, DecodeError>> {
        if let Some(item) = self.pending.pop_front() {
            return Some(item);
        }
        self.refill()
    }

    /// Cold path of [`next_event`](Self::next_event): the queue ran dry, so
    /// pull further decode quanta until an event appears or the buffered
    /// bytes are exhausted/awaiting more input.
    #[cold]
    fn refill(&mut self) -> Option<Result<BranchEvent, DecodeError>> {
        loop {
            if !self.record_events || self.buffered() == 0 {
                return None;
            }
            let before = (self.stats.bytes_consumed, self.resyncing);
            self.pump(self.quantum());
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            if (self.stats.bytes_consumed, self.resyncing) == before {
                // No progress: a partial packet (or resync tail) is waiting
                // for more bytes.
                return None;
            }
        }
    }

    /// Iterator draining the currently decodable events (hwtracer-style).
    pub fn events(&mut self) -> impl Iterator<Item = Result<BranchEvent, DecodeError>> + '_ {
        std::iter::from_fn(move || self.next_event())
    }

    /// Bytes buffered: a partial packet or resync tail, plus — in recording
    /// mode — complete packets not yet pulled by the demand-driven pump.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// The undecoded carry bytes (exact suffix of the pushed stream).
    pub(crate) fn carry(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// The last-IP decompression context.
    pub(crate) fn context_ip(&self) -> u64 {
        self.last_ip
    }

    /// Whether the decoder is discarding garbage awaiting a PSB.
    pub(crate) fn is_resyncing(&self) -> bool {
        self.resyncing
    }

    /// The per-pass pump bound for this decoder's mode.
    fn quantum(&self) -> usize {
        if self.record_events {
            PUMP_QUANTUM
        } else {
            usize::MAX
        }
    }

    /// `true` once [`finish`](Self::finish) has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Counters so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Decodes the carry buffer, committing at most `limit` bytes of
    /// complete packets before returning with more work pending
    /// ([`Stop::Quota`]); resync discarding does not count toward the
    /// quota.
    fn pump(&mut self, limit: usize) {
        let mut decoded = 0usize;
        loop {
            if self.resyncing && !self.resync() {
                return;
            }
            let mut committed = 0usize;
            let (stop, context_ip) = {
                // Split borrows: the decoder reads `buf` while the event
                // sink appends to `pending`/`stats` — no intermediate
                // buffer on the per-event hot path.
                let StreamingDecoder {
                    buf,
                    head,
                    pending,
                    stats,
                    last_ip,
                    record_events,
                    ..
                } = &mut *self;
                let mut dec = PacketDecoder::with_context(&buf[*head..], *last_ip);
                let stop = loop {
                    if decoded + committed >= limit {
                        break Stop::Quota;
                    }
                    match dec.next_packet() {
                        Ok(Some(packet)) => {
                            committed = dec.position();
                            stats.packets += 1;
                            packet_events(packet, &mut |event| {
                                stats.events += 1;
                                if matches!(
                                    event,
                                    BranchEvent::Conditional { .. } | BranchEvent::Indirect { .. }
                                ) {
                                    stats.branches += 1;
                                }
                                if matches!(event, BranchEvent::Overflow) {
                                    stats.gaps += 1;
                                }
                                if *record_events {
                                    pending.push_back(Ok(event));
                                }
                            });
                        }
                        Ok(None) => break Stop::Drained,
                        Err(DecodeError::Truncated { .. }) => break Stop::Truncated,
                        Err(DecodeError::UnknownPacket { byte, .. }) => break Stop::Unknown(byte),
                    }
                };
                // A failed next_packet never advances the context, so this
                // is exactly where the last good packet left it.
                (stop, dec.last_ip())
            };
            self.last_ip = context_ip;
            self.consume(committed);
            decoded += committed;
            match stop {
                Stop::Drained | Stop::Quota => return,
                Stop::Truncated => {
                    if self.finished {
                        self.stats.errors += 1;
                        if self.record_events {
                            self.pending.push_back(Err(DecodeError::Truncated {
                                offset: self.stats.bytes_consumed as usize,
                            }));
                        }
                        let rest = self.buffered();
                        self.consume(rest);
                    }
                    return;
                }
                Stop::Unknown(byte) => {
                    // `committed` stopped exactly at the bad packet, so it
                    // now sits at the head of the carry buffer.
                    self.stats.errors += 1;
                    if self.record_events {
                        self.pending.push_back(Err(DecodeError::UnknownPacket {
                            offset: self.stats.bytes_consumed as usize,
                            byte,
                        }));
                    }
                    self.consume(1);
                    self.resyncing = true;
                }
            }
        }
    }

    /// Discards garbage up to the next PSB. Returns `true` once
    /// synchronised; `false` when more bytes are needed (a 3-byte tail is
    /// kept in case a PSB pattern straddles the chunk boundary).
    fn resync(&mut self) -> bool {
        if let Some(i) = find_psb(self.carry()) {
            self.consume(i);
            self.resyncing = false;
            self.stats.resyncs += 1;
            return true;
        }
        let keep = if self.finished {
            0
        } else {
            self.buffered().min(3)
        };
        let drop = self.buffered() - keep;
        self.consume(drop);
        if self.finished {
            self.resyncing = false;
        }
        false
    }

    /// Drops `n` bytes from the head of the carry buffer (cursor advance
    /// only; the prefix is reclaimed on the next push).
    fn consume(&mut self, n: usize) {
        if n > 0 {
            self.head += n;
            self.stats.bytes_consumed += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncoderConfig, PacketEncoder};
    use crate::packet::{OPC_ESCAPE, OPC_PSB};

    fn encode(events: &[BranchEvent]) -> Vec<u8> {
        let mut enc = PacketEncoder::new();
        enc.begin(0x40_0000);
        for e in events {
            enc.branch(e);
        }
        enc.finish()
    }

    fn mixed_events(n: u64) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| {
                if i % 9 == 0 {
                    BranchEvent::Indirect {
                        target: 0x40_0000 + i * 24,
                    }
                } else {
                    BranchEvent::Conditional { taken: i % 2 == 0 }
                }
            })
            .collect()
    }

    fn drain_ok(dec: &mut StreamingDecoder) -> Vec<BranchEvent> {
        dec.events()
            .map(|item| item.expect("clean stream"))
            .collect()
    }

    #[test]
    fn whole_stream_matches_batch_decoder() {
        let bytes = encode(&mixed_events(500));
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes);
        dec.finish();
        assert_eq!(drain_ok(&mut dec), reference);
        assert_eq!(dec.stats().errors, 0);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(dec.stats().bytes_consumed, bytes.len() as u64);
    }

    #[test]
    fn byte_at_a_time_chunking_matches_batch_decoder() {
        let bytes = encode(&mixed_events(200));
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        let mut dec = StreamingDecoder::new();
        let mut out = Vec::new();
        for b in &bytes {
            dec.push(std::slice::from_ref(b));
            out.extend(drain_ok(&mut dec));
        }
        dec.finish();
        out.extend(drain_ok(&mut dec));
        assert_eq!(out, reference);
        assert_eq!(dec.stats().errors, 0);
    }

    #[test]
    fn mid_psb_cut_is_carried_not_errored() {
        // Cut inside the initial PSB run: the prefix defers, the suffix
        // completes it, and no error is ever surfaced.
        let bytes = encode(&[BranchEvent::Conditional { taken: true }]);
        assert_eq!(&bytes[..2], &[OPC_ESCAPE, OPC_PSB]);
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes[..3]); // one PSB pair + a lone escape byte
        assert!(drain_ok(&mut dec).is_empty());
        assert!(dec.buffered() > 0, "partial escape must be carried");
        dec.push(&bytes[3..]);
        dec.finish();
        let events = drain_ok(&mut dec);
        assert!(events.contains(&BranchEvent::Conditional { taken: true }));
        assert_eq!(dec.stats().errors, 0);
    }

    #[test]
    fn branch_counter_matches_encoder_side() {
        let events = mixed_events(300);
        let bytes = encode(&events);
        let mut dec = StreamingDecoder::new();
        for chunk in bytes.chunks(7) {
            dec.push(chunk);
        }
        dec.finish();
        while dec.next_event().is_some() {}
        assert_eq!(dec.stats().branches, events.len() as u64);
        // Trace start/stop markers are events but not branches.
        assert_eq!(dec.stats().events, events.len() as u64 + 2);
    }

    #[test]
    fn truncated_tail_is_an_error_only_at_finish() {
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0xdead_beef_f00d,
        });
        let bytes = enc.drain();
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes[..bytes.len() - 2]);
        assert!(dec.next_event().is_none(), "partial packet must defer");
        assert!(dec.buffered() > 0);
        dec.finish();
        let item = dec.next_event().expect("finish surfaces the truncation");
        assert!(matches!(item, Err(DecodeError::Truncated { .. })));
        assert_eq!(dec.stats().errors, 1);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn unknown_packet_reports_once_and_resyncs_at_next_psb() {
        let mut enc = PacketEncoder::with_config(EncoderConfig {
            psb_interval_bytes: 64,
            ..EncoderConfig::default()
        });
        enc.begin(0x40_0000);
        for i in 0..400u64 {
            enc.branch(&BranchEvent::Indirect {
                target: i * 0x9999_7777,
            });
        }
        let bytes = enc.finish();
        // Corrupt the stream between the first two PSBs with an undecodable
        // escape sequence.
        let second_psb = 16 + find_psb(&bytes[16..]).expect("periodic PSB");
        let mut corrupt = bytes[..20].to_vec();
        corrupt.extend_from_slice(&[OPC_ESCAPE, 0x55]);
        corrupt.extend_from_slice(&bytes[20..]);
        let mut dec = StreamingDecoder::new();
        for chunk in corrupt.chunks(13) {
            dec.push(chunk);
        }
        dec.finish();
        let mut errors = 0;
        let mut events = Vec::new();
        while let Some(item) = dec.next_event() {
            match item {
                Ok(e) => events.push(e),
                Err(e) => {
                    assert!(matches!(e, DecodeError::UnknownPacket { byte: 0x55, .. }));
                    errors += 1;
                }
            }
        }
        assert_eq!(errors, 1, "exactly one in-band error per corruption");
        assert_eq!(dec.stats().resyncs, 1);
        // Everything from the resync PSB onwards decodes as if standalone.
        let resumed = PacketDecoder::new(&bytes[second_psb..])
            .decode_events()
            .unwrap();
        assert!(events.ends_with(&resumed), "suffix after resync intact");
    }

    #[test]
    fn corruption_with_no_later_psb_drains_at_finish() {
        let bytes = encode(&mixed_events(20));
        let mut corrupt = bytes.clone();
        corrupt.push(0x03); // bad IP-family header
        corrupt.extend_from_slice(&[0xAB; 32]); // trailing garbage, no PSB
        let mut dec = StreamingDecoder::new();
        dec.push(&corrupt);
        dec.finish();
        let errors = dec.events().filter(|i| i.is_err()).count();
        assert_eq!(errors, 1);
        assert_eq!(dec.buffered(), 0, "finish drops the un-synced garbage");
        assert_eq!(dec.stats().resyncs, 0);
    }

    #[test]
    fn ip_context_is_carried_across_chunk_cuts() {
        // Nearby targets compress against last_ip; cutting between the two
        // TIPs only decodes correctly if the context survives the cut.
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0x7f00_1234_5678,
        });
        enc.branch(&BranchEvent::Indirect {
            target: 0x7f00_1234_9abc,
        });
        let bytes = enc.drain();
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        for cut in 1..bytes.len() {
            let mut dec = StreamingDecoder::new();
            dec.push(&bytes[..cut]);
            dec.push(&bytes[cut..]);
            dec.finish();
            assert_eq!(drain_ok(&mut dec), reference, "cut at {cut}");
        }
    }

    #[test]
    fn push_after_finish_panics() {
        let mut dec = StreamingDecoder::new();
        dec.finish();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dec.push(&[0]);
        }))
        .is_err());
    }

    #[test]
    fn counting_only_keeps_stats_but_queues_nothing() {
        let events = mixed_events(200);
        let bytes = encode(&events);
        let mut corrupt = bytes.clone();
        corrupt.push(0x03); // trailing corruption: counted, not queued
        let mut dec = StreamingDecoder::counting_only();
        for chunk in corrupt.chunks(9) {
            dec.push(chunk);
        }
        dec.finish();
        assert!(dec.next_event().is_none(), "counting mode queues no items");
        let stats = dec.stats();
        assert_eq!(stats.branches, events.len() as u64);
        assert_eq!(stats.errors, 1);
        // Identical counters to a recording decoder over the same stream.
        let mut rec = StreamingDecoder::new();
        for chunk in corrupt.chunks(9) {
            rec.push(chunk);
        }
        rec.finish();
        while rec.next_event().is_some() {}
        assert_eq!(rec.stats(), stats);
    }

    #[test]
    fn stats_account_every_pushed_byte() {
        let bytes = encode(&mixed_events(50));
        let mut dec = StreamingDecoder::new();
        for chunk in bytes.chunks(11) {
            dec.push(chunk);
        }
        assert_eq!(dec.stats().bytes_pushed, bytes.len() as u64);
        assert_eq!(
            dec.stats().bytes_consumed + dec.buffered() as u64,
            dec.stats().bytes_pushed
        );
        dec.finish();
        assert_eq!(dec.stats().bytes_consumed, bytes.len() as u64);
    }
}
