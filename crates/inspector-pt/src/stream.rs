//! The streaming packet decoder: decode-while-running.
//!
//! [`PacketDecoder`](crate::decode::PacketDecoder) needs the complete byte
//! stream up front; a live session only ever has a *prefix* — AUX chunks
//! arrive at synchronization boundaries and can be cut at arbitrary byte
//! offsets. [`StreamingDecoder`] closes that gap (the hwtracer-style
//! incremental iterator the ROADMAP's "real decoder path" item asks for):
//!
//! * [`push`](StreamingDecoder::push) accepts chunks incrementally; a
//!   packet cut by a chunk boundary is **deferred**, not an error — its
//!   prefix is carried until the missing bytes arrive;
//! * corruption surfaces as a single in-band
//!   [`DecodeError::UnknownPacket`], after which the decoder discards
//!   garbage up to the next PSB and resumes (at most one PSB window of
//!   events is lost per corruption);
//! * over any chunking of any well-formed stream the yielded events are
//!   exactly what the batch decoder produces on the concatenation of every
//!   chunk (`tests/streaming_decode.rs` enforces this by property test).
//!
//! The equivalence argument: the carry buffer always holds the
//! still-undecoded suffix, so each pump decodes the same byte sequence the
//! batch decoder would see, with [`StreamStats::bytes_consumed`] bytes
//! already committed and `last_ip` carrying the IP-decompression context
//! across the cut. The only framing divergence a cut can introduce is a
//! PSB run split into two shorter PSB packets — which contribute no events
//! and reset the IP context identically.

use std::collections::VecDeque;

use crate::branch::BranchEvent;
use crate::decode::{packet_events, DecodeError, PacketDecoder};
use crate::packet::find_psb;

/// Counters of one streaming decode session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Bytes handed to [`StreamingDecoder::push`] so far.
    pub bytes_pushed: u64,
    /// Bytes fully consumed (decoded or discarded during resync); the
    /// difference to `bytes_pushed` is the buffered partial tail.
    pub bytes_consumed: u64,
    /// Packets decoded.
    pub packets: u64,
    /// Branch events yielded (all kinds, trace markers included).
    pub events: u64,
    /// Branch events that correspond to retired branches (conditional +
    /// indirect) — the number comparable to a recorder's branch count.
    pub branches: u64,
    /// Decode errors reported in-band (unknown packets; a truncated tail
    /// at [`finish`](StreamingDecoder::finish)).
    pub errors: u64,
    /// Successful PSB re-synchronisations after corruption.
    pub resyncs: u64,
}

/// What stopped a decode pass over the carry buffer.
enum Stop {
    /// Every buffered byte decoded.
    Drained,
    /// A partial packet at the tail; wait for more bytes.
    Truncated,
    /// An undecodable header with the offending byte.
    Unknown(u8),
}

/// An incremental PT packet decoder fed by AUX chunks.
///
/// Feed bytes with [`push`](Self::push), consume decoded events (and
/// in-band errors) with [`next_event`](Self::next_event) /
/// [`events`](Self::events), and call [`finish`](Self::finish) once the
/// producer is done — only then is a trailing partial packet an error.
#[derive(Debug)]
pub struct StreamingDecoder {
    /// Carry buffer: the not-yet-consumed suffix of the stream.
    buf: Vec<u8>,
    /// Last-IP decompression context carried across chunk boundaries.
    last_ip: u64,
    /// Decoded events and in-band errors awaiting consumption.
    pending: VecDeque<Result<BranchEvent, DecodeError>>,
    /// Discarding garbage until the next PSB.
    resyncing: bool,
    /// `finish` was called; no more bytes will arrive.
    finished: bool,
    /// When `false`, nothing is queued in `pending`: only [`StreamStats`]
    /// counters are maintained (the ingest workers' mode — the cross-check
    /// needs counts, not the event stream).
    record_events: bool,
    stats: StreamStats,
}

impl Default for StreamingDecoder {
    fn default() -> Self {
        StreamingDecoder {
            buf: Vec::new(),
            last_ip: 0,
            pending: VecDeque::new(),
            resyncing: false,
            finished: false,
            record_events: true,
            stats: StreamStats::default(),
        }
    }
}

impl StreamingDecoder {
    /// Creates a decoder positioned at the start of a stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a decoder that only maintains [`StreamStats`] counters and
    /// never queues events or in-band errors — no per-event allocation on
    /// the hot path. [`next_event`](Self::next_event) always returns
    /// `None`; read the outcome from [`stats`](Self::stats).
    pub fn counting_only() -> Self {
        StreamingDecoder {
            record_events: false,
            ..Self::default()
        }
    }

    /// Appends one AUX chunk and decodes everything now decodable.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish).
    pub fn push(&mut self, chunk: &[u8]) {
        assert!(!self.finished, "push after finish");
        self.stats.bytes_pushed += chunk.len() as u64;
        self.buf.extend_from_slice(chunk);
        self.pump();
    }

    /// Marks the end of the stream and flushes: remaining complete packets
    /// are decoded, a partial packet still buffered becomes an in-band
    /// [`DecodeError::Truncated`], and garbage awaiting a PSB is dropped.
    /// Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.pump();
        debug_assert!(self.buf.is_empty(), "finish must drain the carry buffer");
    }

    /// Removes and returns the next decoded event or in-band error, or
    /// `None` when everything currently decodable has been consumed.
    pub fn next_event(&mut self) -> Option<Result<BranchEvent, DecodeError>> {
        self.pending.pop_front()
    }

    /// Iterator draining the currently decodable events (hwtracer-style).
    pub fn events(&mut self) -> impl Iterator<Item = Result<BranchEvent, DecodeError>> + '_ {
        std::iter::from_fn(move || self.pending.pop_front())
    }

    /// Bytes buffered as a partial packet (or pending resync tail).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// `true` once [`finish`](Self::finish) has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Counters so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Decodes as much of the carry buffer as possible.
    fn pump(&mut self) {
        loop {
            if self.resyncing && !self.resync() {
                return;
            }
            let mut committed = 0usize;
            let (stop, context_ip) = {
                // Split borrows: the decoder reads `buf` while the event
                // sink appends to `pending`/`stats` — no intermediate
                // buffer on the per-event hot path.
                let StreamingDecoder {
                    buf,
                    pending,
                    stats,
                    last_ip,
                    record_events,
                    ..
                } = &mut *self;
                let mut dec = PacketDecoder::with_context(buf.as_slice(), *last_ip);
                let stop = loop {
                    match dec.next_packet() {
                        Ok(Some(packet)) => {
                            committed = dec.position();
                            stats.packets += 1;
                            packet_events(packet, &mut |event| {
                                stats.events += 1;
                                if matches!(
                                    event,
                                    BranchEvent::Conditional { .. } | BranchEvent::Indirect { .. }
                                ) {
                                    stats.branches += 1;
                                }
                                if *record_events {
                                    pending.push_back(Ok(event));
                                }
                            });
                        }
                        Ok(None) => break Stop::Drained,
                        Err(DecodeError::Truncated { .. }) => break Stop::Truncated,
                        Err(DecodeError::UnknownPacket { byte, .. }) => break Stop::Unknown(byte),
                    }
                };
                // A failed next_packet never advances the context, so this
                // is exactly where the last good packet left it.
                (stop, dec.last_ip())
            };
            self.last_ip = context_ip;
            self.consume(committed);
            match stop {
                Stop::Drained => return,
                Stop::Truncated => {
                    if self.finished {
                        self.stats.errors += 1;
                        if self.record_events {
                            self.pending.push_back(Err(DecodeError::Truncated {
                                offset: self.stats.bytes_consumed as usize,
                            }));
                        }
                        let rest = self.buf.len();
                        self.consume(rest);
                    }
                    return;
                }
                Stop::Unknown(byte) => {
                    // `committed` stopped exactly at the bad packet, so it
                    // now sits at the head of the carry buffer.
                    self.stats.errors += 1;
                    if self.record_events {
                        self.pending.push_back(Err(DecodeError::UnknownPacket {
                            offset: self.stats.bytes_consumed as usize,
                            byte,
                        }));
                    }
                    self.consume(1);
                    self.resyncing = true;
                }
            }
        }
    }

    /// Discards garbage up to the next PSB. Returns `true` once
    /// synchronised; `false` when more bytes are needed (a 3-byte tail is
    /// kept in case a PSB pattern straddles the chunk boundary).
    fn resync(&mut self) -> bool {
        if let Some(i) = find_psb(&self.buf) {
            self.consume(i);
            self.resyncing = false;
            self.stats.resyncs += 1;
            return true;
        }
        let keep = if self.finished {
            0
        } else {
            self.buf.len().min(3)
        };
        let drop = self.buf.len() - keep;
        self.consume(drop);
        if self.finished {
            self.resyncing = false;
        }
        false
    }

    /// Drops `n` bytes from the head of the carry buffer.
    fn consume(&mut self, n: usize) {
        if n > 0 {
            self.buf.drain(..n);
            self.stats.bytes_consumed += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncoderConfig, PacketEncoder};
    use crate::packet::{OPC_ESCAPE, OPC_PSB};

    fn encode(events: &[BranchEvent]) -> Vec<u8> {
        let mut enc = PacketEncoder::new();
        enc.begin(0x40_0000);
        for e in events {
            enc.branch(e);
        }
        enc.finish()
    }

    fn mixed_events(n: u64) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| {
                if i % 9 == 0 {
                    BranchEvent::Indirect {
                        target: 0x40_0000 + i * 24,
                    }
                } else {
                    BranchEvent::Conditional { taken: i % 2 == 0 }
                }
            })
            .collect()
    }

    fn drain_ok(dec: &mut StreamingDecoder) -> Vec<BranchEvent> {
        dec.events()
            .map(|item| item.expect("clean stream"))
            .collect()
    }

    #[test]
    fn whole_stream_matches_batch_decoder() {
        let bytes = encode(&mixed_events(500));
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes);
        dec.finish();
        assert_eq!(drain_ok(&mut dec), reference);
        assert_eq!(dec.stats().errors, 0);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(dec.stats().bytes_consumed, bytes.len() as u64);
    }

    #[test]
    fn byte_at_a_time_chunking_matches_batch_decoder() {
        let bytes = encode(&mixed_events(200));
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        let mut dec = StreamingDecoder::new();
        let mut out = Vec::new();
        for b in &bytes {
            dec.push(std::slice::from_ref(b));
            out.extend(drain_ok(&mut dec));
        }
        dec.finish();
        out.extend(drain_ok(&mut dec));
        assert_eq!(out, reference);
        assert_eq!(dec.stats().errors, 0);
    }

    #[test]
    fn mid_psb_cut_is_carried_not_errored() {
        // Cut inside the initial PSB run: the prefix defers, the suffix
        // completes it, and no error is ever surfaced.
        let bytes = encode(&[BranchEvent::Conditional { taken: true }]);
        assert_eq!(&bytes[..2], &[OPC_ESCAPE, OPC_PSB]);
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes[..3]); // one PSB pair + a lone escape byte
        assert!(drain_ok(&mut dec).is_empty());
        assert!(dec.buffered() > 0, "partial escape must be carried");
        dec.push(&bytes[3..]);
        dec.finish();
        let events = drain_ok(&mut dec);
        assert!(events.contains(&BranchEvent::Conditional { taken: true }));
        assert_eq!(dec.stats().errors, 0);
    }

    #[test]
    fn branch_counter_matches_encoder_side() {
        let events = mixed_events(300);
        let bytes = encode(&events);
        let mut dec = StreamingDecoder::new();
        for chunk in bytes.chunks(7) {
            dec.push(chunk);
        }
        dec.finish();
        while dec.next_event().is_some() {}
        assert_eq!(dec.stats().branches, events.len() as u64);
        // Trace start/stop markers are events but not branches.
        assert_eq!(dec.stats().events, events.len() as u64 + 2);
    }

    #[test]
    fn truncated_tail_is_an_error_only_at_finish() {
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0xdead_beef_f00d,
        });
        let bytes = enc.drain();
        let mut dec = StreamingDecoder::new();
        dec.push(&bytes[..bytes.len() - 2]);
        assert!(dec.next_event().is_none(), "partial packet must defer");
        assert!(dec.buffered() > 0);
        dec.finish();
        let item = dec.next_event().expect("finish surfaces the truncation");
        assert!(matches!(item, Err(DecodeError::Truncated { .. })));
        assert_eq!(dec.stats().errors, 1);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn unknown_packet_reports_once_and_resyncs_at_next_psb() {
        let mut enc = PacketEncoder::with_config(EncoderConfig {
            psb_interval_bytes: 64,
            ..EncoderConfig::default()
        });
        enc.begin(0x40_0000);
        for i in 0..400u64 {
            enc.branch(&BranchEvent::Indirect {
                target: i * 0x9999_7777,
            });
        }
        let bytes = enc.finish();
        // Corrupt the stream between the first two PSBs with an undecodable
        // escape sequence.
        let second_psb = 16 + find_psb(&bytes[16..]).expect("periodic PSB");
        let mut corrupt = bytes[..20].to_vec();
        corrupt.extend_from_slice(&[OPC_ESCAPE, 0x55]);
        corrupt.extend_from_slice(&bytes[20..]);
        let mut dec = StreamingDecoder::new();
        for chunk in corrupt.chunks(13) {
            dec.push(chunk);
        }
        dec.finish();
        let mut errors = 0;
        let mut events = Vec::new();
        while let Some(item) = dec.next_event() {
            match item {
                Ok(e) => events.push(e),
                Err(e) => {
                    assert!(matches!(e, DecodeError::UnknownPacket { byte: 0x55, .. }));
                    errors += 1;
                }
            }
        }
        assert_eq!(errors, 1, "exactly one in-band error per corruption");
        assert_eq!(dec.stats().resyncs, 1);
        // Everything from the resync PSB onwards decodes as if standalone.
        let resumed = PacketDecoder::new(&bytes[second_psb..])
            .decode_events()
            .unwrap();
        assert!(events.ends_with(&resumed), "suffix after resync intact");
    }

    #[test]
    fn corruption_with_no_later_psb_drains_at_finish() {
        let bytes = encode(&mixed_events(20));
        let mut corrupt = bytes.clone();
        corrupt.push(0x03); // bad IP-family header
        corrupt.extend_from_slice(&[0xAB; 32]); // trailing garbage, no PSB
        let mut dec = StreamingDecoder::new();
        dec.push(&corrupt);
        dec.finish();
        let errors = dec.events().filter(|i| i.is_err()).count();
        assert_eq!(errors, 1);
        assert_eq!(dec.buffered(), 0, "finish drops the un-synced garbage");
        assert_eq!(dec.stats().resyncs, 0);
    }

    #[test]
    fn ip_context_is_carried_across_chunk_cuts() {
        // Nearby targets compress against last_ip; cutting between the two
        // TIPs only decodes correctly if the context survives the cut.
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0x7f00_1234_5678,
        });
        enc.branch(&BranchEvent::Indirect {
            target: 0x7f00_1234_9abc,
        });
        let bytes = enc.drain();
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        for cut in 1..bytes.len() {
            let mut dec = StreamingDecoder::new();
            dec.push(&bytes[..cut]);
            dec.push(&bytes[cut..]);
            dec.finish();
            assert_eq!(drain_ok(&mut dec), reference, "cut at {cut}");
        }
    }

    #[test]
    fn push_after_finish_panics() {
        let mut dec = StreamingDecoder::new();
        dec.finish();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dec.push(&[0]);
        }))
        .is_err());
    }

    #[test]
    fn counting_only_keeps_stats_but_queues_nothing() {
        let events = mixed_events(200);
        let bytes = encode(&events);
        let mut corrupt = bytes.clone();
        corrupt.push(0x03); // trailing corruption: counted, not queued
        let mut dec = StreamingDecoder::counting_only();
        for chunk in corrupt.chunks(9) {
            dec.push(chunk);
        }
        dec.finish();
        assert!(dec.next_event().is_none(), "counting mode queues no items");
        let stats = dec.stats();
        assert_eq!(stats.branches, events.len() as u64);
        assert_eq!(stats.errors, 1);
        // Identical counters to a recording decoder over the same stream.
        let mut rec = StreamingDecoder::new();
        for chunk in corrupt.chunks(9) {
            rec.push(chunk);
        }
        rec.finish();
        while rec.next_event().is_some() {}
        assert_eq!(rec.stats(), stats);
    }

    #[test]
    fn stats_account_every_pushed_byte() {
        let bytes = encode(&mixed_events(50));
        let mut dec = StreamingDecoder::new();
        for chunk in bytes.chunks(11) {
            dec.push(chunk);
        }
        assert_eq!(dec.stats().bytes_pushed, bytes.len() as u64);
        assert_eq!(
            dec.stats().bytes_consumed + dec.buffered() as u64,
            dec.stats().bytes_pushed
        );
        dec.finish();
        assert_eq!(dec.stats().bytes_consumed, bytes.len() as u64);
    }
}
