//! The packet decoder: the software half integrated into `perf` (the Intel
//! Processor Trace Decoder Library in the paper).

use std::fmt;

use crate::branch::BranchEvent;
use crate::packet::{
    ip_decompress, Packet, FUP_BASE, IP_BYTES_BY_CODE, OPC_ESCAPE, OPC_LONG_TNT, OPC_MODE, OPC_OVF,
    OPC_PAD, OPC_PSB, OPC_PSBEND, TIP_BASE, TIP_PGD_BASE, TIP_PGE_BASE,
};

/// A malformed or truncated packet stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended in the middle of a packet.
    Truncated {
        /// Offset at which the truncated packet started.
        offset: usize,
    },
    /// An unknown header byte was encountered.
    UnknownPacket {
        /// Offset of the bad byte.
        offset: usize,
        /// The byte value.
        byte: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "packet stream truncated at offset {offset}")
            }
            DecodeError::UnknownPacket { offset, byte } => {
                write!(f, "unknown packet header {byte:#04x} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes PT packet bytes back into packets and branch events.
#[derive(Debug)]
pub struct PacketDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    last_ip: u64,
}

impl<'a> PacketDecoder<'a> {
    /// Creates a decoder over a captured byte stream.
    pub fn new(data: &'a [u8]) -> Self {
        Self::with_context(data, 0)
    }

    /// Creates a decoder over a byte stream that continues an earlier one:
    /// `last_ip` seeds the last-IP decompression context. This is how the
    /// streaming decoder ([`crate::stream::StreamingDecoder`]) carries the
    /// IP context across AUX chunk boundaries.
    pub fn with_context(data: &'a [u8], last_ip: u64) -> Self {
        PacketDecoder {
            data,
            pos: 0,
            last_ip,
        }
    }

    /// Current byte offset into the stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The current last-IP decompression context (what the next IP packet
    /// will be decompressed against).
    pub fn last_ip(&self) -> u64 {
        self.last_ip
    }

    /// Skips forward to the next PSB packet (used to start decoding in the
    /// middle of a wrapped snapshot buffer). Returns `true` if a PSB was
    /// found.
    pub fn sync_to_psb(&mut self) -> bool {
        if let Some(i) = crate::packet::find_psb(&self.data[self.pos..]) {
            self.pos += i;
            return true;
        }
        self.pos = self.pos.max(self.data.len().saturating_sub(3));
        false
    }

    /// Decodes the next packet, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or unknown headers.
    pub fn next_packet(&mut self) -> Result<Option<Packet>, DecodeError> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let start = self.pos;
        let byte = self.data[self.pos];

        if byte == OPC_PAD {
            self.pos += 1;
            return Ok(Some(Packet::Pad));
        }
        if byte == OPC_ESCAPE {
            let second = *self
                .data
                .get(self.pos + 1)
                .ok_or(DecodeError::Truncated { offset: start })?;
            match second {
                OPC_PSB => {
                    // A PSB is eight 0x02 0x82 pairs; consume as many pairs
                    // as are present (at least this one).
                    let mut consumed = 0;
                    while self.pos + 1 < self.data.len()
                        && self.data[self.pos] == OPC_ESCAPE
                        && self.data[self.pos + 1] == OPC_PSB
                        && consumed < 8
                    {
                        self.pos += 2;
                        consumed += 1;
                    }
                    // PSB resets the IP context.
                    self.last_ip = 0;
                    return Ok(Some(Packet::Psb));
                }
                OPC_PSBEND => {
                    self.pos += 2;
                    return Ok(Some(Packet::PsbEnd));
                }
                OPC_OVF => {
                    self.pos += 2;
                    // An overflow means an unknown number of packets were
                    // lost; the last-IP context from before the gap is
                    // stale, so reset it (the encoder resets symmetrically).
                    self.last_ip = 0;
                    return Ok(Some(Packet::Overflow));
                }
                OPC_LONG_TNT => {
                    if self.pos + 8 > self.data.len() {
                        return Err(DecodeError::Truncated { offset: start });
                    }
                    let mut payload = [0u8; 8];
                    payload[..6].copy_from_slice(&self.data[self.pos + 2..self.pos + 8]);
                    self.pos += 8;
                    let value = u64::from_le_bytes(payload);
                    return Ok(Some(Packet::Tnt {
                        bits: unpack_tnt(value),
                    }));
                }
                _ => {
                    return Err(DecodeError::UnknownPacket {
                        offset: start,
                        byte: second,
                    })
                }
            }
        }
        if byte == OPC_MODE {
            let payload = *self
                .data
                .get(self.pos + 1)
                .ok_or(DecodeError::Truncated { offset: start })?;
            self.pos += 2;
            return Ok(Some(Packet::Mode { payload }));
        }
        if byte & 1 == 0 {
            // Short TNT.
            self.pos += 1;
            let value = (byte >> 1) as u64;
            return Ok(Some(Packet::Tnt {
                bits: unpack_tnt(value),
            }));
        }

        // IP packet family.
        let base = byte & 0x1F;
        let code = byte >> 5;
        let nbytes =
            IP_BYTES_BY_CODE
                .get(code as usize)
                .copied()
                .ok_or(DecodeError::UnknownPacket {
                    offset: start,
                    byte,
                })?;
        if self.pos + 1 + nbytes > self.data.len() {
            return Err(DecodeError::Truncated { offset: start });
        }
        let payload = &self.data[self.pos + 1..self.pos + 1 + nbytes];
        let ip = ip_decompress(self.last_ip, code, payload);
        // Validate the packet before committing any decoder state: a
        // failed next_packet must leave position and IP context untouched
        // (the streaming decoder carries `last_ip` across chunks and would
        // otherwise resume from a polluted context).
        let packet = match base {
            TIP_BASE => Packet::Tip { ip },
            TIP_PGE_BASE => Packet::TipPge { ip },
            TIP_PGD_BASE => Packet::TipPgd { ip },
            FUP_BASE => Packet::Fup { ip },
            _ => {
                return Err(DecodeError::UnknownPacket {
                    offset: start,
                    byte,
                })
            }
        };
        self.pos += 1 + nbytes;
        self.last_ip = ip;
        Ok(Some(packet))
    }

    /// Decodes the remaining stream into packets.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode_packets(&mut self) -> Result<Vec<Packet>, DecodeError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }

    /// Decodes the remaining stream into branch events (the form consumed by
    /// the provenance recorder).
    ///
    /// TNT bits become [`BranchEvent::Conditional`]; TIP packets become
    /// [`BranchEvent::Indirect`] (returns are indistinguishable from other
    /// indirect transfers at this level, as with real PT without
    /// `ret`-compression disabled); TIP.PGE/PGD become trace start/stop
    /// markers and OVF becomes [`BranchEvent::Overflow`].
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode_events(&mut self) -> Result<Vec<BranchEvent>, DecodeError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            packet_events(p, &mut |e| out.push(e));
        }
        Ok(out)
    }
}

/// Feeds the branch events `packet` contributes to a decoded event stream
/// into `sink` — the single packet→event mapping shared by
/// [`PacketDecoder::decode_events`] and the streaming decoder
/// ([`crate::stream::StreamingDecoder`]), so the two paths cannot diverge.
pub fn packet_events(packet: Packet, sink: &mut impl FnMut(BranchEvent)) {
    match packet {
        Packet::Tnt { bits } => {
            for taken in bits {
                sink(BranchEvent::Conditional { taken });
            }
        }
        Packet::Tip { ip } => sink(BranchEvent::Indirect { target: ip }),
        Packet::TipPge { ip } => sink(BranchEvent::TraceStart { ip }),
        Packet::TipPgd { ip } => sink(BranchEvent::TraceStop { ip }),
        Packet::Overflow => sink(BranchEvent::Overflow),
        Packet::Pad | Packet::Psb | Packet::PsbEnd | Packet::Fup { .. } | Packet::Mode { .. } => {}
    }
}

/// Unpacks TNT bits from a packed value with a terminating stop bit.
fn unpack_tnt(value: u64) -> Vec<bool> {
    if value == 0 {
        return Vec::new();
    }
    let stop = 63 - value.leading_zeros() as usize;
    (0..stop).map(|i| value & (1 << i) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::PacketEncoder;

    fn roundtrip(events: &[BranchEvent]) -> Vec<BranchEvent> {
        let mut enc = PacketEncoder::new();
        for e in events {
            enc.branch(e);
        }
        let bytes = enc.drain();
        PacketDecoder::new(&bytes).decode_events().unwrap()
    }

    #[test]
    fn conditional_roundtrip_preserves_order_and_direction() {
        let events: Vec<BranchEvent> = (0..20)
            .map(|i| BranchEvent::Conditional { taken: i % 3 == 0 })
            .collect();
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn indirect_roundtrip_preserves_targets() {
        let events = vec![
            BranchEvent::Indirect { target: 0x40_1000 },
            BranchEvent::Indirect { target: 0x40_1040 },
            BranchEvent::Indirect {
                target: 0x7fff_ffff_1234,
            },
            BranchEvent::Indirect { target: 0x40_1040 },
        ];
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut events = Vec::new();
        for i in 0..100u64 {
            if i % 7 == 0 {
                events.push(BranchEvent::Indirect {
                    target: 0x400000 + i * 16,
                });
            } else {
                events.push(BranchEvent::Conditional { taken: i % 2 == 0 });
            }
        }
        assert_eq!(roundtrip(&events), events);
    }

    #[test]
    fn returns_decode_as_indirect() {
        let decoded = roundtrip(&[BranchEvent::Return { target: 0x1234 }]);
        assert_eq!(decoded, vec![BranchEvent::Indirect { target: 0x1234 }]);
    }

    #[test]
    fn full_trace_with_begin_and_finish_decodes() {
        let mut enc = PacketEncoder::new();
        enc.begin(0x400000);
        for i in 0..10 {
            enc.branch(&BranchEvent::Conditional { taken: i % 2 == 0 });
        }
        let bytes = enc.finish();
        let mut dec = PacketDecoder::new(&bytes);
        let packets = dec.decode_packets().unwrap();
        assert_eq!(packets[0].mnemonic(), "PSB");
        assert!(packets.iter().any(|p| p.mnemonic() == "TIP.PGE"));
        assert!(packets.iter().any(|p| p.mnemonic() == "TNT"));
        assert!(packets.iter().any(|p| p.mnemonic() == "TIP.PGD"));
    }

    #[test]
    fn overflow_marker_survives_roundtrip() {
        let decoded = roundtrip(&[
            BranchEvent::Conditional { taken: true },
            BranchEvent::Overflow,
            BranchEvent::Conditional { taken: false },
        ]);
        assert_eq!(
            decoded,
            vec![
                BranchEvent::Conditional { taken: true },
                BranchEvent::Overflow,
                BranchEvent::Conditional { taken: false },
            ]
        );
    }

    #[test]
    fn truncated_tip_is_an_error() {
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0xdead_beef_f00d,
        });
        let mut bytes = enc.drain();
        bytes.truncate(bytes.len() - 2);
        let err = PacketDecoder::new(&bytes).decode_events().unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn unknown_escape_is_an_error() {
        let bytes = [OPC_ESCAPE, 0x55];
        let err = PacketDecoder::new(&bytes).decode_events().unwrap_err();
        assert!(matches!(err, DecodeError::UnknownPacket { .. }));
    }

    #[test]
    fn failed_packet_leaves_decoder_state_untouched() {
        // An IP-family header with a valid ipbytes code but an unknown
        // base (0x2F: code 1, base 0x0F) must error without advancing the
        // position or polluting the last-IP context.
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0x1234_5678,
        });
        let mut bytes = enc.drain();
        let good_len = bytes.len();
        bytes.extend_from_slice(&[0x2F, 0xAA, 0xBB]);
        let mut dec = PacketDecoder::new(&bytes);
        assert!(dec.next_packet().unwrap().is_some());
        let (pos, ip) = (dec.position(), dec.last_ip());
        assert_eq!(pos, good_len);
        assert_eq!(ip, 0x1234_5678);
        let err = dec.next_packet().unwrap_err();
        assert!(matches!(err, DecodeError::UnknownPacket { byte: 0x2F, .. }));
        assert_eq!(dec.position(), pos, "failed packet must not consume");
        assert_eq!(dec.last_ip(), ip, "failed packet must not touch context");
    }

    #[test]
    fn sync_to_psb_skips_garbage_prefix() {
        let mut enc = PacketEncoder::new();
        enc.begin(0x400000);
        enc.branch(&BranchEvent::Conditional { taken: true });
        let bytes = enc.finish();
        // Prepend garbage that is not decodable on its own.
        let mut wrapped = vec![0xABu8, 0xCD, 0xEF];
        wrapped.extend_from_slice(&bytes);
        let mut dec = PacketDecoder::new(&wrapped);
        assert!(dec.sync_to_psb());
        let events = dec.decode_events().unwrap();
        assert!(events.contains(&BranchEvent::Conditional { taken: true }));
    }

    #[test]
    fn sync_to_psb_reports_absence() {
        let mut dec = PacketDecoder::new(&[1, 2, 3]);
        assert!(!dec.sync_to_psb());
    }

    #[test]
    fn empty_stream_decodes_to_nothing() {
        assert!(PacketDecoder::new(&[]).decode_events().unwrap().is_empty());
    }

    #[test]
    fn pad_bytes_are_skipped() {
        let bytes = [OPC_PAD, OPC_PAD, 0b0000_0110u8]; // two pads + TNT(taken)
        let events = PacketDecoder::new(&bytes).decode_events().unwrap();
        assert_eq!(events, vec![BranchEvent::Conditional { taken: true }]);
    }
}
