//! A sequence-numbered reassembly queue — the ordered-queue shape used by
//! parallel PT parsers: producers complete PSB windows **out of order**, the
//! consumer pops them **strictly in sequence**, and a bounded depth applies
//! backpressure so an unlucky slow window cannot let completed successors
//! pile up without limit.
//!
//! The queue is deliberately tiny and self-contained (std mutex + condvars,
//! no lock-free cleverness): windows are thousands of bytes each, so the
//! per-window synchronisation cost is noise next to the decode itself.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Bounded reorder buffer keyed by sequence number.
///
/// * [`push`](Self::push) inserts a completed item under its sequence
///   number, blocking while the item is more than `capacity` positions
///   ahead of the consumer (backpressure);
/// * [`pop`](Self::pop) blocks until the *next* sequence number is present
///   and returns items in exactly `0, 1, 2, …` order;
/// * [`close`](Self::close) wakes everyone: blocked pushes give up (their
///   item is returned back to the caller), pops drain what is already
///   contiguous and then return `None`.
#[derive(Debug)]
pub struct OrderedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when the next-in-sequence slot may have been filled.
    ready: Condvar,
    /// Signalled when the consumer advanced and made room.
    space: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    /// Completed items awaiting their turn, keyed by sequence number.
    slots: BTreeMap<u64, T>,
    /// The sequence number the consumer pops next.
    next: u64,
    closed: bool,
    /// High-water mark of out-of-order items held at once.
    max_depth: usize,
}

impl<T> OrderedQueue<T> {
    /// Creates a queue admitting at most `capacity` in-flight sequence
    /// numbers ahead of the consumer (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        OrderedQueue {
            inner: Mutex::new(Inner {
                slots: BTreeMap::new(),
                next: 0,
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Inserts the completed item for `seq`, blocking while `seq` is at
    /// least `capacity` positions ahead of the next pop. Returns
    /// `Err(item)` if the queue was closed before room appeared.
    pub fn push(&self, seq: u64, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while !inner.closed && seq >= inner.next + self.capacity as u64 {
            inner = self.space.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.slots.insert(seq, item);
        inner.max_depth = inner.max_depth.max(inner.slots.len());
        if seq == inner.next {
            self.ready.notify_all();
        }
        Ok(())
    }

    /// Removes and returns the next item in sequence, blocking until it is
    /// produced. Returns `None` once the queue is closed and the next item
    /// in sequence is not (and therefore never will be) present.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let next = inner.next;
            if let Some(item) = inner.slots.remove(&next) {
                inner.next += 1;
                self.space.notify_all();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking [`pop`](Self::pop): `None` when the next item in
    /// sequence has not been produced yet.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let next = inner.next;
        let item = inner.slots.remove(&next)?;
        inner.next += 1;
        self.space.notify_all();
        Some(item)
    }

    /// Marks the queue closed and wakes all waiters.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// The sequence number the consumer will pop next.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().unwrap().next
    }

    /// High-water mark of out-of-order items held at once (the
    /// `resequencer_max_depth` statistic).
    pub fn max_depth(&self) -> usize {
        self.inner.lock().unwrap().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_in_sequence_regardless_of_push_order() {
        let q = OrderedQueue::new(8);
        for seq in [3u64, 0, 2, 1] {
            q.push(seq, seq * 10).unwrap();
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(popped, vec![0, 10, 20, 30]);
        assert!(q.max_depth() >= 2, "out-of-order items were held");
    }

    #[test]
    fn try_pop_waits_for_the_gap_to_fill() {
        let q = OrderedQueue::new(4);
        q.push(1, "b").unwrap();
        assert_eq!(q.try_pop(), None, "seq 0 still missing");
        q.push(0, "a").unwrap();
        assert_eq!(q.try_pop(), Some("a"));
        assert_eq!(q.try_pop(), Some("b"));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn bounded_depth_applies_backpressure() {
        let q = Arc::new(OrderedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for seq in 0..8u64 {
                    q.push(seq, seq).unwrap();
                }
            })
        };
        let mut popped = Vec::new();
        while popped.len() < 8 {
            if let Some(v) = q.pop() {
                popped.push(v);
            }
        }
        producer.join().unwrap();
        assert_eq!(popped, (0..8).collect::<Vec<_>>());
        assert!(
            q.max_depth() <= 2,
            "depth bound violated: {}",
            q.max_depth()
        );
    }

    #[test]
    fn close_drains_contiguous_prefix_then_ends() {
        let q = OrderedQueue::new(8);
        q.push(0, 0).unwrap();
        q.push(1, 1).unwrap();
        q.push(3, 3).unwrap(); // 2 never arrives
        q.close();
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None, "gap at 2 ends the stream");
        assert!(q.push(9, 9).is_err(), "push after close is refused");
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(OrderedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(0, 77).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(77));
    }

    #[test]
    fn close_unblocks_a_full_producer() {
        let q = Arc::new(OrderedQueue::new(1));
        q.push(0, 0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1, 1))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(producer.join().unwrap().is_err(), "closed while blocked");
    }
}
