//! The AUX area ring buffer.
//!
//! Intel PT writes its packet stream into the perf "AUX area", a ring buffer
//! shared with user space. Two modes matter for INSPECTOR (paper §V-B and
//! §VI):
//!
//! * **full-trace mode** — the kernel never overwrites data user space has
//!   not collected; if the consumer is too slow the *producer* drops packets
//!   and the trace has gaps (an OVF packet marks the spot);
//! * **snapshot mode** — old data is constantly overwritten so the buffer
//!   always holds the most recent window; a snapshot is grabbed around an
//!   event of interest (`SIGUSR2` in perf).

use serde::{Deserialize, Serialize};

use crate::packet::{OPC_ESCAPE, OPC_OVF};

/// AUX buffer operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuxMode {
    /// Never overwrite uncollected data; drop (and mark) when full.
    FullTrace,
    /// Constantly overwrite the oldest data (snapshot mode).
    Snapshot,
}

/// Statistics of one AUX buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuxStats {
    /// Bytes offered by the producer.
    pub bytes_produced: u64,
    /// Bytes accepted into the buffer.
    pub bytes_written: u64,
    /// Bytes dropped because the buffer was full (full-trace mode only).
    pub bytes_lost: u64,
    /// Bytes overwritten before collection (snapshot mode only).
    pub bytes_overwritten: u64,
    /// Number of distinct gaps (overflow episodes).
    pub gaps: u64,
}

/// A bounded ring buffer carrying the PT packet stream.
#[derive(Debug)]
pub struct AuxBuffer {
    mode: AuxMode,
    capacity: usize,
    data: Vec<u8>,
    stats: AuxStats,
    in_overflow: bool,
}

impl AuxBuffer {
    /// Creates a buffer of `capacity` bytes in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(mode: AuxMode, capacity: usize) -> Self {
        assert!(capacity > 0, "AUX buffer capacity must be non-zero");
        AuxBuffer {
            mode,
            capacity,
            data: Vec::with_capacity(capacity.min(1 << 20)),
            stats: AuxStats::default(),
            in_overflow: false,
        }
    }

    /// The operating mode.
    pub fn mode(&self) -> AuxMode {
        self.mode
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> AuxStats {
        self.stats
    }

    /// Offers packet bytes to the buffer (the producer side).
    pub fn produce(&mut self, bytes: &[u8]) {
        self.stats.bytes_produced += bytes.len() as u64;
        match self.mode {
            AuxMode::FullTrace => {
                let free = self.capacity - self.data.len();
                if bytes.len() <= free {
                    if self.in_overflow {
                        // Mark the gap before resuming, like the hardware
                        // emitting OVF when it recovers.
                        if self.capacity - self.data.len() >= 2 {
                            self.data.push(OPC_ESCAPE);
                            self.data.push(OPC_OVF);
                            self.stats.bytes_written += 2;
                        }
                        self.in_overflow = false;
                    }
                    self.data.extend_from_slice(bytes);
                    self.stats.bytes_written += bytes.len() as u64;
                } else {
                    if !self.in_overflow {
                        self.stats.gaps += 1;
                        self.in_overflow = true;
                    }
                    self.stats.bytes_lost += bytes.len() as u64;
                }
            }
            AuxMode::Snapshot => {
                self.data.extend_from_slice(bytes);
                self.stats.bytes_written += bytes.len() as u64;
                if self.data.len() > self.capacity {
                    let excess = self.data.len() - self.capacity;
                    self.data.drain(..excess);
                    self.stats.bytes_overwritten += excess as u64;
                }
            }
        }
    }

    /// Forces one overflow episode of `bytes` lost bytes, as if the
    /// producer had offered that many bytes against a full ring. The loss
    /// flows through the normal accounting (`gaps` + 1, `bytes_lost` +
    /// `bytes`) and the next successful [`produce`](Self::produce) emits a
    /// real OVF recovery marker into the stream — deterministic fault
    /// injection for the degraded-decode paths.
    pub fn inject_overflow(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        if !self.in_overflow {
            self.stats.gaps += 1;
            self.in_overflow = true;
        }
        self.stats.bytes_lost += bytes;
    }

    /// Collects (drains) everything currently buffered — the consumer side,
    /// equivalent to `perf record` copying the AUX area to disk.
    pub fn collect(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.data)
    }

    /// Peeks at the buffered bytes without draining them (snapshot grab).
    pub fn peek(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_trace_accepts_until_capacity() {
        let mut aux = AuxBuffer::new(AuxMode::FullTrace, 8);
        aux.produce(&[1, 2, 3, 4]);
        aux.produce(&[5, 6, 7, 8]);
        assert_eq!(aux.len(), 8);
        assert_eq!(aux.stats().bytes_lost, 0);
    }

    #[test]
    fn full_trace_drops_and_marks_gap_when_full() {
        let mut aux = AuxBuffer::new(AuxMode::FullTrace, 4);
        aux.produce(&[1, 2, 3, 4]);
        aux.produce(&[5, 6]); // dropped
        assert_eq!(aux.stats().bytes_lost, 2);
        assert_eq!(aux.stats().gaps, 1);
        // Consumer drains, producer resumes: an OVF marker precedes new data.
        let first = aux.collect();
        assert_eq!(first, vec![1, 2, 3, 4]);
        aux.produce(&[7]);
        let second = aux.collect();
        assert_eq!(second, vec![OPC_ESCAPE, OPC_OVF, 7]);
    }

    #[test]
    fn consecutive_drops_count_as_one_gap() {
        let mut aux = AuxBuffer::new(AuxMode::FullTrace, 2);
        aux.produce(&[1, 2]);
        aux.produce(&[3]);
        aux.produce(&[4]);
        assert_eq!(aux.stats().gaps, 1);
        assert_eq!(aux.stats().bytes_lost, 2);
    }

    #[test]
    fn snapshot_mode_keeps_most_recent_window() {
        let mut aux = AuxBuffer::new(AuxMode::Snapshot, 4);
        aux.produce(&[1, 2, 3]);
        aux.produce(&[4, 5, 6]);
        assert_eq!(aux.peek(), &[3, 4, 5, 6]);
        assert_eq!(aux.stats().bytes_overwritten, 2);
        assert_eq!(aux.stats().gaps, 0);
    }

    #[test]
    fn collect_drains_buffer() {
        let mut aux = AuxBuffer::new(AuxMode::Snapshot, 16);
        aux.produce(&[1, 2, 3]);
        assert_eq!(aux.collect(), vec![1, 2, 3]);
        assert!(aux.is_empty());
        assert_eq!(aux.capacity(), 16);
        assert_eq!(aux.mode(), AuxMode::Snapshot);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        AuxBuffer::new(AuxMode::FullTrace, 0);
    }

    #[test]
    fn injected_overflow_accounts_and_marks_like_a_real_one() {
        let mut aux = AuxBuffer::new(AuxMode::FullTrace, 16);
        aux.produce(&[1, 2]);
        aux.inject_overflow(0); // no-op
        assert_eq!(aux.stats().gaps, 0);
        aux.inject_overflow(7);
        aux.inject_overflow(3); // same episode
        assert_eq!(aux.stats().gaps, 1);
        assert_eq!(aux.stats().bytes_lost, 10);
        aux.produce(&[9]);
        assert_eq!(aux.collect(), vec![1, 2, OPC_ESCAPE, OPC_OVF, 9]);
    }

    #[test]
    fn produced_accounting_includes_lost_bytes() {
        let mut aux = AuxBuffer::new(AuxMode::FullTrace, 2);
        aux.produce(&[1, 2, 3, 4]);
        assert_eq!(aux.stats().bytes_produced, 4);
        assert_eq!(aux.stats().bytes_written, 0);
        assert_eq!(aux.stats().bytes_lost, 4);
    }
}
