//! Per-thread PT trace sessions: encoder + AUX buffer + statistics.
//!
//! The runtime gives every traced thread a [`ThreadTrace`]. Branch events are
//! encoded immediately (that cost is the "OS support for Intel PT" share of
//! the provenance overhead); the resulting packet bytes are pushed into the
//! thread's AUX buffer and collected either continuously (full-trace mode) or
//! on demand (snapshot mode).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::aux::{AuxBuffer, AuxMode};
use crate::branch::BranchEvent;
use crate::decode::{DecodeError, PacketDecoder};
use crate::encode::PacketEncoder;
use crate::packet::{complete_frame_prefix, find_psb};
use crate::stats::PtStats;

/// Configuration of a per-thread trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// AUX buffer mode.
    pub mode: AuxMode,
    /// AUX buffer capacity in bytes (perf uses 4 MiB slots by default;
    /// the paper's snapshot facility uses 4 MB slots as well).
    pub aux_capacity: usize,
    /// Flush the encoder into the AUX buffer every this many branches.
    pub flush_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: AuxMode::FullTrace,
            aux_capacity: 4 << 20,
            flush_every: 4096,
        }
    }
}

/// A per-thread Intel PT trace.
#[derive(Debug)]
pub struct ThreadTrace {
    encoder: PacketEncoder,
    aux: AuxBuffer,
    collected: Vec<u8>,
    stats: PtStats,
    config: TraceConfig,
    since_flush: u64,
}

impl ThreadTrace {
    /// Creates a trace with the default configuration and enables tracing at
    /// `start_ip`.
    pub fn new(start_ip: u64) -> Self {
        Self::with_config(start_ip, TraceConfig::default())
    }

    /// Creates a trace with an explicit configuration.
    pub fn with_config(start_ip: u64, config: TraceConfig) -> Self {
        let mut encoder = PacketEncoder::new();
        encoder.begin(start_ip);
        ThreadTrace {
            encoder,
            aux: AuxBuffer::new(config.mode, config.aux_capacity),
            collected: Vec::new(),
            stats: PtStats::default(),
            config,
            since_flush: 0,
        }
    }

    /// Records one branch event.
    pub fn record(&mut self, event: BranchEvent) {
        let start = Instant::now();
        self.stats.branches += 1;
        if event.is_conditional() {
            self.stats.conditional_branches += 1;
        }
        self.encoder.branch(&event);
        self.since_flush += 1;
        if self.since_flush >= self.config.flush_every {
            self.flush();
        }
        self.stats.encode_time += start.elapsed();
    }

    /// Records a conditional branch (convenience).
    pub fn conditional(&mut self, taken: bool) {
        self.record(BranchEvent::Conditional { taken });
    }

    /// Records an indirect branch/call (convenience).
    pub fn indirect(&mut self, target: u64) {
        self.record(BranchEvent::Indirect { target });
    }

    /// Flushes pending encoder output into the AUX buffer and, in full-trace
    /// mode, collects the AUX contents into the trace log (what `perf
    /// record` would write to `/tmp`).
    pub fn flush(&mut self) {
        let bytes = self.encoder.drain();
        if !bytes.is_empty() {
            self.stats.trace_bytes += bytes.len() as u64;
            self.aux.produce(&bytes);
        }
        if self.config.mode == AuxMode::FullTrace {
            let drained = self.aux.collect();
            self.collected.extend_from_slice(&drained);
        }
        let aux_stats = self.aux.stats();
        self.stats.bytes_lost = aux_stats.bytes_lost;
        self.stats.gaps = aux_stats.gaps;
        self.since_flush = 0;
    }

    /// Forces one overflow episode of `bytes` lost bytes on the underlying
    /// AUX ring (deterministic fault injection). The loss is accounted like
    /// a real slow-consumer drop — `gaps`/`bytes_lost` in [`PtStats`] — and
    /// the next flush emits a real OVF marker into the collected stream.
    pub fn inject_overflow(&mut self, bytes: u64) {
        self.aux.inject_overflow(bytes);
        let aux_stats = self.aux.stats();
        self.stats.bytes_lost = aux_stats.bytes_lost;
        self.stats.gaps = aux_stats.gaps;
    }

    /// Removes and returns the packet bytes collected since the last drain.
    ///
    /// This is the incremental consumption path of the streaming pipeline:
    /// the runtime drains the collected log at every synchronization
    /// boundary and submits it to the perf session right away, so AUX data
    /// flows while the thread runs instead of being handed over in one lump
    /// at [`finish`](Self::finish). Bytes are moved out; the concatenation
    /// of all drains plus the tail returned by `finish` decodes to exactly
    /// the same branch-event stream as an undrained run (packet framing may
    /// differ, since a drain forces pending TNT bits into a packet early).
    ///
    /// A drained chunk never ends mid-packet: if the collected log ends in
    /// a partial frame (possible when the AUX transport cuts at arbitrary
    /// byte offsets), the partial tail is carried into the next drain
    /// instead of being handed out truncated, so per-chunk consumers (the
    /// online decode stage) never see a spurious truncation.
    pub fn drain_collected(&mut self) -> Vec<u8> {
        let boundary = complete_frame_prefix(&self.collected);
        if boundary == self.collected.len() {
            std::mem::take(&mut self.collected)
        } else {
            let tail = self.collected.split_off(boundary);
            std::mem::replace(&mut self.collected, tail)
        }
    }

    /// Grabs a snapshot of the most recent trace window (snapshot mode):
    /// emits a FUP marking the request point and returns the bytes currently
    /// retained in the AUX buffer.
    ///
    /// The window's head may start mid-packet (the ring overwrites oldest
    /// bytes first; consumers re-sync at the first PSB). For any window
    /// that contains a PSB — the only kind a consumer can decode at all —
    /// the tail is guaranteed to end on a packet boundary: the window is
    /// frame-scanned from that PSB and a partial trailing frame is trimmed
    /// off rather than returned truncated. A PSB-free window is returned
    /// as-is (there is no trustworthy framing to trim by).
    pub fn snapshot(&mut self, marker_ip: u64) -> Vec<u8> {
        self.encoder.fup(marker_ip);
        let bytes = self.encoder.drain();
        self.stats.trace_bytes += bytes.len() as u64;
        self.aux.produce(&bytes);
        let window = self.aux.peek();
        // Frame-scan from the first PSB — the only point at which framing
        // is trustworthy in a wrapped window.
        match find_psb(window) {
            Some(start) => window[..start + complete_frame_prefix(&window[start..])].to_vec(),
            None => window.to_vec(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> PtStats {
        self.stats
    }

    /// Finishes the trace and returns the full collected log.
    pub fn finish(mut self) -> (Vec<u8>, PtStats) {
        self.flush();
        // finish() on the encoder emits the final TIP.PGD.
        let encoder = std::mem::take(&mut self.encoder);
        let tail = encoder.finish();
        self.stats.trace_bytes += tail.len() as u64;
        self.aux.produce(&tail);
        let drained = self.aux.collect();
        self.collected.extend_from_slice(&drained);
        let aux_stats = self.aux.stats();
        self.stats.bytes_lost = aux_stats.bytes_lost;
        self.stats.gaps = aux_stats.gaps;
        (self.collected, self.stats)
    }

    /// Decodes a collected log back into branch events.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the log is malformed.
    pub fn decode(log: &[u8]) -> Result<Vec<BranchEvent>, DecodeError> {
        PacketDecoder::new(log).decode_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_flush_finish_roundtrip() {
        let mut trace = ThreadTrace::new(0x400000);
        for i in 0..1000u64 {
            if i % 10 == 0 {
                trace.indirect(0x400000 + i);
            } else {
                trace.conditional(i % 3 == 0);
            }
        }
        let (log, stats) = trace.finish();
        assert_eq!(stats.branches, 1000);
        assert_eq!(stats.conditional_branches, 900);
        assert!(stats.trace_bytes > 0);
        assert!(!log.is_empty());

        let events = ThreadTrace::decode(&log).unwrap();
        let conditionals = events.iter().filter(|e| e.is_conditional()).count();
        assert_eq!(conditionals, 900);
    }

    #[test]
    fn compression_keeps_bytes_per_branch_small() {
        let mut trace = ThreadTrace::new(0);
        for i in 0..10_000u64 {
            trace.conditional(i % 2 == 0);
        }
        let (_, stats) = trace.finish();
        assert!(
            stats.bytes_per_branch() < 0.5,
            "TNT compression should be well below one byte per branch, got {}",
            stats.bytes_per_branch()
        );
    }

    #[test]
    fn full_trace_mode_with_tiny_aux_reports_loss_free_collection() {
        // The runtime collects at every flush, so even a small AUX buffer
        // does not lose data as long as flushes are frequent enough.
        let mut trace = ThreadTrace::with_config(
            0,
            TraceConfig {
                mode: AuxMode::FullTrace,
                aux_capacity: 512,
                flush_every: 16,
            },
        );
        for i in 0..5_000u64 {
            trace.indirect(i * 0x1111);
        }
        let (log, stats) = trace.finish();
        assert_eq!(stats.bytes_lost, 0);
        assert_eq!(stats.gaps, 0);
        assert!(log.len() as u64 >= stats.trace_bytes);
    }

    #[test]
    fn slow_consumer_loses_data_and_records_gaps() {
        // Flushing rarely with a tiny AUX buffer models a consumer that
        // cannot keep up: data must be lost and gaps recorded.
        let mut trace = ThreadTrace::with_config(
            0,
            TraceConfig {
                mode: AuxMode::FullTrace,
                aux_capacity: 64,
                flush_every: 1_000_000,
            },
        );
        for i in 0..10_000u64 {
            trace.indirect(i * 0x9999_7777);
        }
        trace.flush();
        let stats = trace.stats();
        assert!(stats.bytes_lost > 0);
        assert!(stats.gaps >= 1);
    }

    #[test]
    fn injected_overflow_flows_into_pt_stats_and_stream() {
        let mut trace = ThreadTrace::new(0x400000);
        trace.conditional(true);
        trace.flush();
        trace.inject_overflow(100);
        trace.conditional(false);
        let (log, stats) = trace.finish();
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.bytes_lost, 100);
        let events = ThreadTrace::decode(&log).unwrap();
        assert!(events.contains(&BranchEvent::Overflow));
    }

    #[test]
    fn snapshot_mode_retains_recent_window_only() {
        let mut trace = ThreadTrace::with_config(
            0,
            TraceConfig {
                mode: AuxMode::Snapshot,
                aux_capacity: 256,
                flush_every: 8,
            },
        );
        for i in 0..10_000u64 {
            trace.conditional(i % 2 == 0);
        }
        let window = trace.snapshot(0xdead);
        assert!(window.len() <= 256);
        // The window decodes after re-syncing to a PSB (or from the start if
        // it happens to begin on a packet boundary).
        let mut dec = PacketDecoder::new(&window);
        if dec.sync_to_psb() {
            assert!(dec.decode_events().is_ok());
        }
    }

    #[test]
    fn incremental_drains_reassemble_into_the_full_log() {
        // Draining mid-stream forces pending TNT bits into packets early, so
        // the bytes differ from an undrained run — but the concatenation of
        // all drained chunks plus the finish() tail must decode to exactly
        // the same branch events.
        let run = |drain_every: Option<u64>| -> Vec<u8> {
            let mut trace = ThreadTrace::new(0x400000);
            let mut out = Vec::new();
            for i in 0..5_000u64 {
                if i % 7 == 0 {
                    trace.indirect(0x400000 + i);
                } else {
                    trace.conditional(i % 2 == 0);
                }
                if let Some(n) = drain_every {
                    if i % n == n - 1 {
                        trace.flush();
                        out.extend_from_slice(&trace.drain_collected());
                    }
                }
            }
            let (tail, _) = trace.finish();
            out.extend_from_slice(&tail);
            out
        };
        let undrained = run(None);
        let drained = run(Some(64));
        let reference = ThreadTrace::decode(&undrained).unwrap();
        let incremental = ThreadTrace::decode(&drained).unwrap();
        assert_eq!(incremental, reference);
        assert!(!incremental.is_empty());
    }

    #[test]
    fn drain_collected_carries_a_partial_packet_into_the_next_drain() {
        // Regression: a byte-granular AUX transport can leave the collected
        // log ending mid-packet. The drain must stop at the last packet
        // boundary and hand the partial tail out with the *next* drain,
        // never as a truncated chunk.
        let mut trace = ThreadTrace::new(0x400000);
        trace.indirect(0xdead_beef);
        trace.flush();
        // A TIP packet whose last two bytes have not arrived yet.
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect {
            target: 0x7777_1234_5678,
        });
        let tip = enc.drain();
        let (head, tail) = tip.split_at(tip.len() - 2);
        trace.collected.extend_from_slice(head);

        let first = trace.drain_collected();
        // The chunk decodes standalone — no spurious truncation error…
        PacketDecoder::new(&first)
            .decode_events()
            .expect("drained chunk must end on a packet boundary");
        // …because the partial frame stayed buffered.
        assert!(!trace.collected.is_empty(), "partial tail must be carried");

        trace.collected.extend_from_slice(tail);
        let second = trace.drain_collected();
        assert!(trace.collected.is_empty());
        let mut all = first;
        all.extend_from_slice(&second);
        let events = PacketDecoder::new(&all).decode_events().unwrap();
        assert!(events.contains(&BranchEvent::Indirect {
            target: 0x7777_1234_5678
        }));
    }

    #[test]
    fn carried_partial_tail_is_flushed_by_finish() {
        let mut trace = ThreadTrace::new(0x400000);
        trace.conditional(true);
        // Leave a partial TIP in the collected log, as above.
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Indirect { target: 0x1111 });
        let tip = enc.drain();
        trace.flush();
        trace.collected.extend_from_slice(&tip[..tip.len() - 1]);
        let _ = trace.drain_collected();
        assert!(!trace.collected.is_empty());
        // finish() returns everything still buffered, carried tail included.
        let (log, _) = trace.finish();
        assert!(log.starts_with(&tip[..tip.len() - 1]));
    }

    #[test]
    fn snapshot_window_ends_on_a_packet_boundary() {
        let mut trace = ThreadTrace::with_config(
            0,
            TraceConfig {
                mode: AuxMode::Snapshot,
                aux_capacity: 256,
                flush_every: 8,
            },
        );
        for i in 0..10_000u64 {
            if i % 5 == 0 {
                trace.indirect(i * 0x1357);
            } else {
                trace.conditional(i % 2 == 0);
            }
        }
        let window = trace.snapshot(0xdead);
        let mut dec = PacketDecoder::new(&window);
        if dec.sync_to_psb() {
            // From the first PSB on, the window must decode without a
            // truncation at the tail.
            dec.decode_events()
                .expect("snapshot window must not end mid-packet");
        }
    }

    #[test]
    fn stats_accumulate_across_flushes() {
        let mut trace = ThreadTrace::new(0);
        trace.conditional(true);
        trace.flush();
        trace.conditional(false);
        trace.flush();
        assert_eq!(trace.stats().branches, 2);
        assert!(trace.stats().trace_bytes > 0);
    }
}
