//! Parallel PSB-window decoding: split, decode speculatively, reassemble.
//!
//! PSB packets are context-free resynchronisation points, so a PT stream
//! splits at PSB-run starts into windows that can be decoded independently
//! and in parallel. The catch: the raw 4-byte PSB pattern can also appear
//! *inside* packet payloads (a TIP target or long-TNT payload containing
//! `02 82 02 82`), and a byte-level scanner cannot tell without decoding.
//! Splitting there would diverge from the serial decoder.
//!
//! This module therefore decodes windows **speculatively** and validates
//! every boundary at merge time, which makes the parallel path equivalent
//! to the serial [`StreamingDecoder`] *by construction*:
//!
//! * [`WindowScanner`] cuts at every raw PSB pattern that starts a PSB run
//!   (candidates whose two preceding bytes are another `02 82` pair are
//!   run continuations, not starts). Consequences proved by the cut rule:
//!   no pattern straddles a cut, and a window's body (offset > 0) contains
//!   no run-start pattern — so a window-local resync can never succeed.
//! * [`WindowDecoder`] decodes one window from the reset decoder state (no
//!   inherited last-IP — the window's leading PSB resets it anyway) and
//!   captures the end state: undecoded carry bytes, last-IP, resync flag.
//! * [`Reassembler`] consumes [`WindowOutcome`]s in sequence order and
//!   validates each boundary against the previous window's end state:
//!   - carry empty, not resyncing → the cut was a true packet boundary;
//!     the speculative result is exactly what the serial decoder produces
//!     (the window starts with a PSB, so no context is inherited): merge.
//!   - resyncing → the serial decoder would discard the (≤ 3-byte) resync
//!     tail and find its PSB exactly at the cut (the cut rule guarantees
//!     no earlier pattern spans the boundary): count the discard and one
//!     resync, then merge the speculative result.
//!   - carry non-empty → a packet straddles the cut (the pattern sat in a
//!     payload): the speculation was wrong, so the window is **replayed
//!     serially**, seeded with the carried prefix and last-IP. False cuts
//!     need a payload aligned just so; replays are rare and each costs one
//!     window of serial decode.
//!
//! Merged output — events, in-band errors with stream-order offsets, and
//! [`StreamStats`] — is byte-for-byte what the serial decoder yields over
//! the same stream, including the at-most-one-PSB-window loss guarantee
//! under corruption. `tests/streaming_decode.rs` property-tests the
//! equivalence over arbitrary streams, chunkings, window counts and
//! injected corruption.

use std::sync::Mutex;

use crate::branch::BranchEvent;
use crate::decode::DecodeError;
use crate::ordered::OrderedQueue;
use crate::packet::{find_psb_from, OPC_ESCAPE, OPC_PSB};
use crate::stream::{StreamStats, StreamingDecoder};

/// Splits an incrementally arriving byte stream into PSB-delimited windows.
///
/// Push chunks as they arrive; every completed window (bytes from one cut
/// to the next) is handed back as soon as its closing cut is seen. The
/// final, still-open window is obtained with [`flush`](Self::flush) once
/// the stream ends. A stream containing no PSB at all degenerates into a
/// single window — exactly the serial decode.
#[derive(Debug, Default)]
pub struct WindowScanner {
    /// Bytes since the last emitted cut.
    buf: Vec<u8>,
    /// Scan resume offset within `buf` (everything before it has been
    /// scanned; a 3-byte overlap is re-scanned in case a pattern straddles
    /// a push boundary).
    scan_pos: usize,
    /// Total windows emitted (including the eventual flush).
    emitted: u64,
}

impl WindowScanner {
    /// Creates a scanner positioned at the start of a stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk and returns every window completed by it, in stream
    /// order.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(chunk);
        let mut cuts = Vec::new();
        let mut from = self.scan_pos;
        while let Some(c) = find_psb_from(&self.buf, from) {
            // A candidate is a cut iff it starts a PSB run: the two bytes
            // before it must not be another escape/PSB pair (then it is a
            // continuation inside a run). `c < 2` can only happen at the
            // very head of the stream, where there is no preceding pair.
            if c > 0 && (c < 2 || self.buf[c - 2..c] != [OPC_ESCAPE, OPC_PSB]) {
                cuts.push(c);
            }
            from = c + 1;
        }
        let mut windows = Vec::with_capacity(cuts.len());
        let mut start = 0usize;
        for &c in &cuts {
            windows.push(self.buf[start..c].to_vec());
            start = c;
        }
        if start > 0 {
            self.buf.drain(..start);
        }
        self.scan_pos = self.buf.len().saturating_sub(3);
        self.emitted += windows.len() as u64;
        windows
    }

    /// Ends the stream, returning the final (possibly empty) window.
    pub fn flush(&mut self) -> Vec<u8> {
        self.scan_pos = 0;
        self.emitted += 1;
        std::mem::take(&mut self.buf)
    }

    /// Bytes buffered in the still-open window.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Windows emitted so far (the next window's sequence number).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// The result of speculatively decoding one PSB-delimited window with no
/// inherited context.
#[derive(Debug)]
pub struct WindowOutcome {
    /// Decoded events and in-band errors, offsets window-local.
    pub events: Vec<Result<BranchEvent, DecodeError>>,
    /// The window decoder's counters (resyncs are always 0: a window body
    /// contains no run-start pattern to resynchronise at).
    pub stats: StreamStats,
    /// Undecoded suffix: a packet prefix cut by the window boundary, or a
    /// (≤ 3-byte) resync tail. Empty means the window ended exactly on a
    /// packet boundary.
    pub carry: Vec<u8>,
    /// Last-IP context at the window's end.
    pub last_ip: u64,
    /// Whether the window ended while discarding garbage after corruption.
    pub resyncing: bool,
    /// The raw window bytes, retained so a false cut can be replayed
    /// serially by the [`Reassembler`].
    pub bytes: Vec<u8>,
}

/// Decodes single PSB-delimited windows context-free: every window starts
/// from the reset (start-of-stream) decoder state.
///
/// The inner [`StreamingDecoder`] is *reset*, not reallocated, between
/// windows — its carry buffer and pending-event queue keep their capacity,
/// which is what makes per-window decode cost match serial decode (the
/// queue grows to a full pump quantum of events on TNT-dense streams).
/// Give each worker thread its own `WindowDecoder`.
#[derive(Debug)]
pub struct WindowDecoder {
    dec: StreamingDecoder,
    record_events: bool,
}

impl WindowDecoder {
    /// A decoder whose outcomes carry the decoded events.
    pub fn new() -> Self {
        WindowDecoder {
            dec: StreamingDecoder::new(),
            record_events: true,
        }
    }

    /// A decoder whose outcomes carry only [`StreamStats`] counters (the
    /// ingest pool's cross-check mode — no per-event buffering).
    pub fn counting_only() -> Self {
        WindowDecoder {
            dec: StreamingDecoder::counting_only(),
            record_events: false,
        }
    }

    /// Decodes one window, capturing events, counters and the end state
    /// the reassembler validates the next boundary against.
    pub fn decode(&mut self, window: Vec<u8>) -> WindowOutcome {
        let dec = &mut self.dec;
        dec.reset(self.record_events);
        dec.push(&window);
        let mut events = Vec::new();
        while let Some(item) = dec.next_event() {
            events.push(item);
        }
        WindowOutcome {
            events,
            stats: dec.stats(),
            carry: dec.carry().to_vec(),
            last_ip: dec.context_ip(),
            resyncing: dec.is_resyncing(),
            bytes: window,
        }
    }
}

impl Default for WindowDecoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Merges speculative [`WindowOutcome`]s back into exact stream order,
/// validating every window boundary (see the module docs for the three
/// boundary cases). Feed outcomes strictly in sequence — the
/// [`OrderedQueue`](crate::ordered::OrderedQueue) provides that order when
/// windows complete out of order.
#[derive(Debug)]
pub struct Reassembler {
    record_events: bool,
    /// Merged events with stream-order error offsets (empty in counting
    /// mode). Drained by [`take_events`](Self::take_events) or streamed
    /// through the sink variant of [`accept`](Self::accept_into).
    events: Vec<Result<BranchEvent, DecodeError>>,
    stats: StreamStats,
    carry: Vec<u8>,
    last_ip: u64,
    resyncing: bool,
    windows: u64,
    replays: u64,
    finished: bool,
}

impl Reassembler {
    /// A reassembler at the start of a stream. With `record_events` off
    /// only [`StreamStats`] are maintained.
    pub fn new(record_events: bool) -> Self {
        Reassembler {
            record_events,
            events: Vec::new(),
            stats: StreamStats::default(),
            carry: Vec::new(),
            last_ip: 0,
            resyncing: false,
            windows: 0,
            replays: 0,
            finished: false,
        }
    }

    /// Merges the next window in sequence, buffering its events.
    pub fn accept(&mut self, outcome: WindowOutcome) {
        let events = &mut std::mem::take(&mut self.events);
        self.accept_into(outcome, &mut |item| events.push(item));
        self.events = std::mem::take(events);
    }

    /// Merges the next window in sequence, streaming its merged events (in
    /// exact stream order, offsets rebased) into `sink` instead of
    /// buffering them.
    pub fn accept_into(
        &mut self,
        outcome: WindowOutcome,
        sink: &mut dyn FnMut(Result<BranchEvent, DecodeError>),
    ) {
        assert!(!self.finished, "accept after finish");
        self.windows += 1;
        if self.resyncing {
            // The serial decoder is discarding garbage; the cut rule
            // guarantees its next PSB is exactly this window's start, so it
            // drops the kept tail, counts one resync and proceeds — which
            // is precisely the speculative fresh-context decode.
            self.stats.bytes_consumed += self.carry.len() as u64;
            self.carry.clear();
            self.stats.resyncs += 1;
            self.resyncing = false;
            self.adopt(outcome, sink);
        } else if self.carry.is_empty() {
            // True packet boundary: the window re-establishes context at
            // its leading PSB, so the speculative decode is the serial
            // decode.
            self.adopt(outcome, sink);
        } else {
            // A packet straddles the cut — the pattern sat inside a
            // payload. Replay this window serially from the carried state.
            self.replay(outcome.bytes, sink);
        }
    }

    /// Ends the stream: the remaining carry is flushed exactly as the
    /// serial decoder's `finish` would (a partial packet becomes an
    /// in-band truncation error, an unsynchronised tail is dropped).
    pub fn finish(&mut self) {
        let events = &mut std::mem::take(&mut self.events);
        self.finish_into(&mut |item| events.push(item));
        self.events = std::mem::take(events);
    }

    /// Sink variant of [`finish`](Self::finish).
    pub fn finish_into(&mut self, sink: &mut dyn FnMut(Result<BranchEvent, DecodeError>)) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut dec = StreamingDecoder::resume(
            std::mem::take(&mut self.carry),
            self.last_ip,
            self.resyncing,
            self.record_events,
        );
        dec.finish();
        self.merge_serial(&mut dec, sink);
        self.resyncing = false;
    }

    /// Merged counters so far (stream-order totals).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Takes the buffered merged events.
    pub fn take_events(&mut self) -> Vec<Result<BranchEvent, DecodeError>> {
        std::mem::take(&mut self.events)
    }

    /// Windows merged so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Boundaries that proved to be false cuts and were replayed serially.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Adopts a validated speculative outcome wholesale.
    fn adopt(
        &mut self,
        outcome: WindowOutcome,
        sink: &mut dyn FnMut(Result<BranchEvent, DecodeError>),
    ) {
        debug_assert_eq!(
            outcome.stats.resyncs, 0,
            "a window body holds no run-start pattern to resync at"
        );
        let base = self.stats.bytes_consumed as usize;
        if self.record_events {
            for item in outcome.events {
                sink(rebase(item, base));
            }
        }
        let s = outcome.stats;
        self.stats.bytes_pushed += s.bytes_pushed;
        self.stats.bytes_consumed += s.bytes_consumed;
        self.stats.packets += s.packets;
        self.stats.events += s.events;
        self.stats.branches += s.branches;
        self.stats.errors += s.errors;
        self.stats.resyncs += s.resyncs;
        self.stats.gaps += s.gaps;
        self.carry = outcome.carry;
        self.last_ip = outcome.last_ip;
        self.resyncing = outcome.resyncing;
    }

    /// Serially re-decodes a window whose opening cut was false, seeded
    /// with the carried prefix and context.
    fn replay(&mut self, window: Vec<u8>, sink: &mut dyn FnMut(Result<BranchEvent, DecodeError>)) {
        self.replays += 1;
        let mut dec = StreamingDecoder::resume(
            std::mem::take(&mut self.carry),
            self.last_ip,
            false,
            self.record_events,
        );
        dec.push(&window);
        self.merge_serial(&mut dec, sink);
    }

    /// Folds a serial (replay or finish) decoder's output into the merged
    /// stream. The decoder's `bytes_consumed` includes previously-carried
    /// bytes, which were pushed (counted) in an earlier window — so pushed
    /// and consumed totals each count every stream byte exactly once, and
    /// local error offsets rebased by the pre-replay consumed total equal
    /// the serial stream offsets.
    fn merge_serial(
        &mut self,
        dec: &mut StreamingDecoder,
        sink: &mut dyn FnMut(Result<BranchEvent, DecodeError>),
    ) {
        let base = self.stats.bytes_consumed as usize;
        if self.record_events {
            while let Some(item) = dec.next_event() {
                sink(rebase(item, base));
            }
        }
        let s = dec.stats();
        self.stats.bytes_pushed += s.bytes_pushed;
        self.stats.bytes_consumed += s.bytes_consumed;
        self.stats.packets += s.packets;
        self.stats.events += s.events;
        self.stats.branches += s.branches;
        self.stats.errors += s.errors;
        self.stats.resyncs += s.resyncs;
        self.stats.gaps += s.gaps;
        self.carry = dec.carry().to_vec();
        self.last_ip = dec.context_ip();
        self.resyncing = dec.is_resyncing();
    }
}

/// Rebases a window-local error offset into the stream-order offset.
fn rebase(item: Result<BranchEvent, DecodeError>, base: usize) -> Result<BranchEvent, DecodeError> {
    match item {
        Ok(event) => Ok(event),
        Err(DecodeError::Truncated { offset }) => Err(DecodeError::Truncated {
            offset: base + offset,
        }),
        Err(DecodeError::UnknownPacket { offset, byte }) => Err(DecodeError::UnknownPacket {
            offset: base + offset,
            byte,
        }),
    }
}

/// Decodes a complete byte stream through the windowed path with `workers`
/// parallel window decoders, returning the merged events (serial order,
/// serial offsets) and stream-order [`StreamStats`].
///
/// Equivalent to pushing the whole stream through a serial
/// [`StreamingDecoder`] and draining it — the property the tests enforce —
/// but the per-window decode fans out across `workers` threads and is
/// reassembled through a bounded [`OrderedQueue`]. With `workers <= 1`
/// there is no parallelism to buy the pipeline overhead back, so the
/// serial decoder runs directly.
pub fn decode_windowed(
    bytes: &[u8],
    workers: usize,
) -> (Vec<Result<BranchEvent, DecodeError>>, StreamStats) {
    let mut events = Vec::new();
    let stats = decode_windowed_into(bytes, workers, true, &mut |item| events.push(item));
    (events, stats)
}

/// Sink-driven [`decode_windowed`]: merged events are streamed into `sink`
/// in exact serial order instead of being buffered (with `record_events`
/// off, only counters are produced and `sink` is never called). The sink
/// is generic so the single-worker fast path inlines it per event.
pub fn decode_windowed_into<F: FnMut(Result<BranchEvent, DecodeError>)>(
    bytes: &[u8],
    workers: usize,
    record_events: bool,
    sink: &mut F,
) -> StreamStats {
    let workers = workers.max(1);
    if workers == 1 {
        // A lone worker has nothing to overlap the merge with: the windowed
        // pipeline would pay scan + outcome buffering + per-window hand-off
        // for zero parallelism. The serial decoder *is* the semantics the
        // windowed path reproduces (the proptested equivalence), so run it
        // directly — single-window decode costs exactly a serial decode.
        let mut dec = if record_events {
            StreamingDecoder::new()
        } else {
            StreamingDecoder::counting_only()
        };
        dec.push(bytes);
        while let Some(item) = dec.next_event() {
            sink(item);
        }
        dec.finish();
        while let Some(item) = dec.next_event() {
            sink(item);
        }
        return dec.stats();
    }
    let mut scanner = WindowScanner::new();
    let mut windows = scanner.push(bytes);
    windows.push(scanner.flush());
    let total = windows.len();
    let jobs = Mutex::new(windows.into_iter().enumerate());
    // Deeper than the worker count so decode and merge pipeline instead of
    // hand-shaking per window: with depth == workers a lone worker would
    // block on every push until the consumer merged the previous outcome,
    // paying a wake-up round-trip per window. Depth stays bounded, so
    // backpressure (and the memory bound) is preserved.
    let queue = OrderedQueue::new(4 * workers.max(2));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One reused (reset-per-window) decoder per worker.
                let mut decoder = if record_events {
                    WindowDecoder::new()
                } else {
                    WindowDecoder::counting_only()
                };
                loop {
                    let job = jobs.lock().unwrap().next();
                    let Some((seq, window)) = job else { break };
                    if queue.push(seq as u64, decoder.decode(window)).is_err() {
                        break;
                    }
                }
            });
        }
        let mut reasm = Reassembler::new(record_events);
        for _ in 0..total {
            let outcome = queue.pop().expect("every window seq is produced");
            reasm.accept_into(outcome, sink);
        }
        reasm.finish_into(sink);
        reasm.stats()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EncoderConfig, PacketEncoder};
    use crate::packet::PSB_PATTERN;

    fn encode(n: u64, psb_interval: usize) -> Vec<u8> {
        let mut enc = PacketEncoder::with_config(EncoderConfig {
            psb_interval_bytes: psb_interval,
            ..EncoderConfig::default()
        });
        enc.begin(0x40_0000);
        for i in 0..n {
            if i % 11 == 0 {
                enc.branch(&BranchEvent::Indirect {
                    target: 0x40_0000 + i * 24,
                });
            } else {
                enc.branch(&BranchEvent::Conditional { taken: i % 3 == 0 });
            }
        }
        enc.finish()
    }

    fn serial_reference(bytes: &[u8]) -> (Vec<Result<BranchEvent, DecodeError>>, StreamStats) {
        let mut dec = StreamingDecoder::new();
        dec.push(bytes);
        dec.finish();
        let events: Vec<_> = dec.events().collect();
        (events, dec.stats())
    }

    #[test]
    fn scanner_cuts_at_every_psb_run_start_only() {
        let bytes = encode(2_000, 256);
        let mut scanner = WindowScanner::new();
        let mut windows = scanner.push(&bytes);
        windows.push(scanner.flush());
        assert!(windows.len() > 2, "periodic PSBs produce many windows");
        let mut rebuilt = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            if i > 0 {
                assert_eq!(&w[..4], &PSB_PATTERN, "window {i} starts at a PSB");
                // A run start, not a run continuation.
                let n = rebuilt.len();
                assert_ne!(&bytes[n - 2..n], &[OPC_ESCAPE, OPC_PSB]);
            }
            rebuilt.extend_from_slice(w);
        }
        assert_eq!(rebuilt, bytes, "windows partition the stream exactly");
    }

    #[test]
    fn scanner_is_chunking_invariant() {
        let bytes = encode(1_500, 128);
        let mut whole = WindowScanner::new();
        let mut expect = whole.push(&bytes);
        expect.push(whole.flush());
        for chunk in [1usize, 3, 7, 64, 1024] {
            let mut scanner = WindowScanner::new();
            let mut got = Vec::new();
            for c in bytes.chunks(chunk) {
                got.extend(scanner.push(c));
            }
            got.push(scanner.flush());
            assert_eq!(got, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn windowed_decode_matches_serial_on_clean_streams() {
        let bytes = encode(3_000, 512);
        let (reference, ref_stats) = serial_reference(&bytes);
        for workers in [1usize, 2, 4, 8] {
            let (events, stats) = decode_windowed(&bytes, workers);
            assert_eq!(events, reference, "workers={workers}");
            assert_eq!(stats, ref_stats, "workers={workers}");
        }
    }

    #[test]
    fn windowed_decode_matches_serial_without_any_psb() {
        // No PSB at all: one degenerate window, still equivalent.
        let mut enc = PacketEncoder::with_config(EncoderConfig {
            psb_interval_bytes: 0,
            ..EncoderConfig::default()
        });
        for i in 0..200u64 {
            enc.branch(&BranchEvent::Indirect {
                target: 0x40_0000 + i * 8,
            });
        }
        let bytes = enc.drain();
        assert_eq!(find_psb_from(&bytes, 0), None, "stream must be PSB-free");
        let (reference, ref_stats) = serial_reference(&bytes);
        let (events, stats) = decode_windowed(&bytes, 4);
        assert_eq!(events, reference);
        assert_eq!(stats, ref_stats);
    }

    #[test]
    fn windowed_decode_matches_serial_under_corruption() {
        let bytes = encode(2_000, 256);
        // Corrupt a byte a little after the second window's start so the
        // resync discards to the third window.
        let mut scanner = WindowScanner::new();
        let windows = scanner.push(&bytes);
        assert!(windows.len() >= 3);
        let corrupt_at = windows[0].len() + windows[1].len() / 2;
        let mut corrupted = bytes.clone();
        corrupted[corrupt_at] = 0x07; // undecodable IP-family header
        let (reference, ref_stats) = serial_reference(&corrupted);
        assert!(
            reference.iter().any(|item| item.is_err()),
            "corruption must surface in the serial reference"
        );
        for workers in [1usize, 2, 4] {
            let (events, stats) = decode_windowed(&corrupted, workers);
            assert_eq!(events, reference, "workers={workers}");
            assert_eq!(stats, ref_stats, "workers={workers}");
            assert!(stats.resyncs >= 1);
        }
    }

    #[test]
    fn false_cut_inside_a_tip_payload_is_replayed_serially() {
        // 0x8202_8202 encodes (against a low last-IP) as a 4-byte TIP
        // payload that is byte-identical to the PSB pattern: the scanner
        // must cut there, the reassembler must detect the straddling
        // packet and replay, and the result must still equal serial.
        let mut enc = PacketEncoder::new();
        enc.begin(0x40_0000);
        for i in 0..50u64 {
            enc.branch(&BranchEvent::Conditional { taken: i % 2 == 0 });
        }
        enc.branch(&BranchEvent::Indirect {
            target: 0x8202_8202,
        });
        for i in 0..50u64 {
            enc.branch(&BranchEvent::Conditional { taken: i % 3 == 0 });
        }
        let bytes = enc.finish();
        let mut scanner = WindowScanner::new();
        let mut windows = scanner.push(&bytes);
        windows.push(scanner.flush());
        assert!(
            windows.len() >= 2,
            "the payload pattern must look like a cut to the scanner"
        );
        let (reference, ref_stats) = serial_reference(&bytes);
        assert!(
            reference.iter().all(|item| item.is_ok()),
            "the stream is well-formed — a false split must not invent errors"
        );
        let (events, stats) = decode_windowed(&bytes, 2);
        assert_eq!(events, reference);
        assert_eq!(stats, ref_stats);
    }

    #[test]
    fn reassembler_counts_replays() {
        let mut enc = PacketEncoder::new();
        enc.begin(0x40_0000);
        enc.branch(&BranchEvent::Indirect {
            target: 0x8202_8202,
        });
        enc.branch(&BranchEvent::Indirect { target: 0x40_1000 });
        let bytes = enc.finish();
        let mut scanner = WindowScanner::new();
        let mut windows = scanner.push(&bytes);
        windows.push(scanner.flush());
        let mut decoder = WindowDecoder::new();
        let mut reasm = Reassembler::new(true);
        for w in windows {
            reasm.accept(decoder.decode(w));
        }
        reasm.finish();
        assert_eq!(reasm.replays(), 1, "exactly the payload cut is replayed");
        let (reference, ref_stats) = serial_reference(&bytes);
        assert_eq!(reasm.take_events(), reference);
        assert_eq!(reasm.stats(), ref_stats);
    }

    #[test]
    fn counting_mode_matches_recording_stats() {
        let bytes = encode(2_000, 256);
        let (_, ref_stats) = serial_reference(&bytes);
        let mut called = false;
        let stats = decode_windowed_into(&bytes, 4, false, &mut |_| called = true);
        assert!(!called, "counting mode must never emit events");
        assert_eq!(stats, ref_stats);
    }

    #[test]
    fn truncated_tail_surfaces_once_with_stream_offset() {
        let mut bytes = encode(600, 128);
        bytes.push(0x2D); // TIP header promising 2 IP bytes that never arrive
        let (reference, ref_stats) = serial_reference(&bytes);
        let (events, stats) = decode_windowed(&bytes, 4);
        assert_eq!(events, reference);
        assert_eq!(stats, ref_stats);
        assert_eq!(stats.errors, 1);
    }
}
