//! # inspector-pt
//!
//! A software model of **Intel Processor Trace (PT)** — the hardware
//! control-flow tracing facility INSPECTOR uses to record control
//! dependencies (paper §V-B).
//!
//! Real Intel PT logs retired branches into highly compressed packets:
//! conditional branches become single **TNT** bits, indirect branches and
//! returns become **TIP** packets carrying a (last-IP-compressed) target
//! address, and the stream is periodically re-synchronised with **PSB**
//! packets. The packets are written by the CPU into the *AUX area* ring
//! buffer exposed through the Linux `perf` interface; if the consumer cannot
//! keep up the stream has gaps (an **OVF** packet), and in *snapshot mode*
//! the buffer simply wraps so that only the most recent window survives.
//!
//! This crate reproduces that pipeline in software with a byte-exact packet
//! format: [`encode::PacketEncoder`] turns a stream of [`branch::BranchEvent`]s
//! into packet bytes, [`aux::AuxBuffer`] models the ring buffer in both full
//! and snapshot modes, and [`decode::PacketDecoder`] turns captured bytes
//! back into branch events (re-synchronising at PSB boundaries after gaps).
//! The encoder/decoder pair is what gives the evaluation its realistic trace
//! volumes, bandwidths and compression ratios (Figures 6 and 9).
//!
//! # Three decode modes: batch, streaming, windowed
//!
//! Three decode paths share one packet grammar and one packet→event mapping
//! ([`decode::packet_events`]):
//!
//! * [`decode::PacketDecoder`] is the **batch** decoder: it requires the
//!   complete byte stream, fails fast ([`decode::DecodeError`]) and is the
//!   semantic reference.
//! * [`stream::StreamingDecoder`] is the **online** decoder the runtime's
//!   ingest workers run while the traced program executes. It accepts AUX
//!   chunks incrementally and upholds two contracts:
//!
//!   1. **Chunk boundaries are invisible.** A packet cut by a chunk
//!      boundary is carried (deferred), never errored; over *any* chunking
//!      of a well-formed stream the yielded events are byte-for-byte what
//!      the batch decoder produces on the concatenated bytes. A truncated
//!      tail only becomes an error at [`stream::StreamingDecoder::finish`].
//!   2. **Corruption costs at most one PSB window.** An undecodable header
//!      surfaces exactly one in-band [`decode::DecodeError::UnknownPacket`];
//!      the decoder then discards bytes until the next PSB pattern (where
//!      the IP context is reset by construction) and resumes losing only
//!      the events between the corruption point and that PSB.
//!
//! * The **windowed** path ([`window`]) parallelises the streaming decode:
//!   [`window::WindowScanner`] splits the stream at PSB-run starts (found
//!   with the SWAR scanner behind [`packet::find_psb`]), each window is
//!   decoded speculatively with a fresh context by a
//!   [`window::WindowDecoder`] on any available worker, and a
//!   [`window::Reassembler`] fed through the sequence-numbered
//!   [`ordered::OrderedQueue`] merges the outcomes back into exact stream
//!   order — validating every boundary (and serially replaying the rare
//!   false cut where the PSB byte-pattern sat inside a packet payload) so
//!   the merged events, errors and [`stream::StreamStats`] are
//!   byte-for-byte the serial streaming output, contracts 1 and 2
//!   included.
//!
//! Producers uphold the matching invariant: [`trace::ThreadTrace`] never
//! hands out a chunk that ends mid-packet ([`packet::complete_frame_prefix`]
//! carries partial frames into the next drain), so deferral in practice
//! only triggers on byte-granular transports.
//!
//! ```
//! use inspector_pt::branch::BranchEvent;
//! use inspector_pt::encode::PacketEncoder;
//! use inspector_pt::decode::PacketDecoder;
//!
//! let mut enc = PacketEncoder::new();
//! enc.begin(0x4000);
//! enc.branch(&BranchEvent::Conditional { taken: true });
//! enc.branch(&BranchEvent::Indirect { target: 0x4100 });
//! let bytes = enc.finish();
//!
//! let events = PacketDecoder::new(&bytes).decode_events().unwrap();
//! assert!(events.contains(&BranchEvent::Conditional { taken: true }));
//! assert!(events.contains(&BranchEvent::Indirect { target: 0x4100 }));
//! ```

pub mod aux;
pub mod branch;
pub mod decode;
pub mod encode;
pub mod ordered;
pub mod packet;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod window;

pub use aux::{AuxBuffer, AuxMode};
pub use branch::BranchEvent;
pub use decode::{DecodeError, PacketDecoder};
pub use encode::PacketEncoder;
pub use ordered::OrderedQueue;
pub use packet::Packet;
pub use stats::PtStats;
pub use stream::{StreamStats, StreamingDecoder};
pub use trace::ThreadTrace;
pub use window::{decode_windowed, Reassembler, WindowDecoder, WindowOutcome, WindowScanner};
