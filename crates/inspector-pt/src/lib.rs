//! # inspector-pt
//!
//! A software model of **Intel Processor Trace (PT)** — the hardware
//! control-flow tracing facility INSPECTOR uses to record control
//! dependencies (paper §V-B).
//!
//! Real Intel PT logs retired branches into highly compressed packets:
//! conditional branches become single **TNT** bits, indirect branches and
//! returns become **TIP** packets carrying a (last-IP-compressed) target
//! address, and the stream is periodically re-synchronised with **PSB**
//! packets. The packets are written by the CPU into the *AUX area* ring
//! buffer exposed through the Linux `perf` interface; if the consumer cannot
//! keep up the stream has gaps (an **OVF** packet), and in *snapshot mode*
//! the buffer simply wraps so that only the most recent window survives.
//!
//! This crate reproduces that pipeline in software with a byte-exact packet
//! format: [`encode::PacketEncoder`] turns a stream of [`branch::BranchEvent`]s
//! into packet bytes, [`aux::AuxBuffer`] models the ring buffer in both full
//! and snapshot modes, and [`decode::PacketDecoder`] turns captured bytes
//! back into branch events (re-synchronising at PSB boundaries after gaps).
//! The encoder/decoder pair is what gives the evaluation its realistic trace
//! volumes, bandwidths and compression ratios (Figures 6 and 9).
//!
//! ```
//! use inspector_pt::branch::BranchEvent;
//! use inspector_pt::encode::PacketEncoder;
//! use inspector_pt::decode::PacketDecoder;
//!
//! let mut enc = PacketEncoder::new();
//! enc.begin(0x4000);
//! enc.branch(&BranchEvent::Conditional { taken: true });
//! enc.branch(&BranchEvent::Indirect { target: 0x4100 });
//! let bytes = enc.finish();
//!
//! let events = PacketDecoder::new(&bytes).decode_events().unwrap();
//! assert!(events.contains(&BranchEvent::Conditional { taken: true }));
//! assert!(events.contains(&BranchEvent::Indirect { target: 0x4100 }));
//! ```

pub mod aux;
pub mod branch;
pub mod decode;
pub mod encode;
pub mod packet;
pub mod stats;
pub mod trace;

pub use aux::{AuxBuffer, AuxMode};
pub use branch::BranchEvent;
pub use decode::{DecodeError, PacketDecoder};
pub use encode::PacketEncoder;
pub use packet::Packet;
pub use stats::PtStats;
pub use trace::ThreadTrace;
