//! Branch events: the logical control-flow records carried by a PT stream.

use serde::{Deserialize, Serialize};

/// One retired branch as seen by the tracing hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchEvent {
    /// A conditional branch; encoded as a single TNT bit.
    Conditional {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// An indirect branch or call; encoded as a TIP packet carrying the
    /// target instruction pointer.
    Indirect {
        /// Target instruction pointer.
        target: u64,
    },
    /// A function return; also encoded as a TIP packet (returns are indirect
    /// transfers), but kept distinct so consumers can reconstruct call
    /// structure.
    Return {
        /// Return target instruction pointer.
        target: u64,
    },
    /// Tracing was enabled at this instruction pointer (TIP.PGE).
    TraceStart {
        /// Instruction pointer where tracing began.
        ip: u64,
    },
    /// Tracing was disabled at this instruction pointer (TIP.PGD).
    TraceStop {
        /// Instruction pointer where tracing stopped.
        ip: u64,
    },
    /// The hardware lost packets (buffer overflow); the decoder reports the
    /// gap so consumers know the trace is incomplete here.
    Overflow,
}

impl BranchEvent {
    /// Returns `true` for events encoded as TNT bits.
    pub fn is_conditional(&self) -> bool {
        matches!(self, BranchEvent::Conditional { .. })
    }

    /// Returns the instruction pointer carried by the event, if any.
    pub fn ip(&self) -> Option<u64> {
        match *self {
            BranchEvent::Indirect { target }
            | BranchEvent::Return { target }
            | BranchEvent::TraceStart { ip: target }
            | BranchEvent::TraceStop { ip: target } => Some(target),
            BranchEvent::Conditional { .. } | BranchEvent::Overflow => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_ip() {
        assert!(BranchEvent::Conditional { taken: true }.is_conditional());
        assert!(!BranchEvent::Indirect { target: 1 }.is_conditional());
        assert_eq!(BranchEvent::Indirect { target: 7 }.ip(), Some(7));
        assert_eq!(BranchEvent::Return { target: 9 }.ip(), Some(9));
        assert_eq!(BranchEvent::Conditional { taken: false }.ip(), None);
        assert_eq!(BranchEvent::Overflow.ip(), None);
        assert_eq!(BranchEvent::TraceStart { ip: 3 }.ip(), Some(3));
        assert_eq!(BranchEvent::TraceStop { ip: 4 }.ip(), Some(4));
    }
}
