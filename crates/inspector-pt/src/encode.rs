//! The packet encoder: what the tracing hardware does.

use crate::branch::BranchEvent;
use crate::packet::{
    ip_compression, FUP_BASE, LONG_TNT_CAPACITY, OPC_ESCAPE, OPC_LONG_TNT, OPC_MODE, OPC_OVF,
    OPC_PSB, OPC_PSBEND, SHORT_TNT_CAPACITY, TIP_BASE, TIP_PGD_BASE, TIP_PGE_BASE,
};

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Emit a PSB synchronisation point every this many payload bytes
    /// (mirrors the hardware's periodic PSB generation). `0` disables
    /// periodic PSBs.
    pub psb_interval_bytes: usize,
    /// Use long TNT packets when at least this many bits are pending;
    /// otherwise short TNTs are used.
    pub prefer_long_tnt_at: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            psb_interval_bytes: 4096,
            prefer_long_tnt_at: SHORT_TNT_CAPACITY + 1,
        }
    }
}

/// Encodes a stream of branch events into PT packet bytes.
#[derive(Debug)]
pub struct PacketEncoder {
    config: EncoderConfig,
    out: Vec<u8>,
    pending_tnt: Vec<bool>,
    last_ip: u64,
    bytes_since_psb: usize,
    branches: u64,
    started: bool,
}

impl Default for PacketEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketEncoder {
    /// Creates an encoder with the default configuration.
    pub fn new() -> Self {
        Self::with_config(EncoderConfig::default())
    }

    /// Creates an encoder with an explicit configuration.
    pub fn with_config(config: EncoderConfig) -> Self {
        PacketEncoder {
            config,
            out: Vec::new(),
            pending_tnt: Vec::new(),
            last_ip: 0,
            bytes_since_psb: 0,
            branches: 0,
            started: false,
        }
    }

    /// Number of branch events encoded so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Number of packet bytes produced so far (excluding pending TNT bits).
    pub fn bytes(&self) -> usize {
        self.out.len()
    }

    /// Starts the trace: emits PSB, MODE and a TIP.PGE at `start_ip`
    /// (tracing enabled), mirroring what the hardware emits when the trace
    /// filter first matches.
    pub fn begin(&mut self, start_ip: u64) {
        self.emit_psb_group();
        self.emit_mode(0x01);
        self.emit_ip_packet(TIP_PGE_BASE, start_ip);
        self.started = true;
    }

    /// Encodes one branch event.
    pub fn branch(&mut self, event: &BranchEvent) {
        self.branches += 1;
        match *event {
            BranchEvent::Conditional { taken } => {
                self.pending_tnt.push(taken);
                if self.pending_tnt.len() >= LONG_TNT_CAPACITY {
                    self.flush_tnt();
                }
            }
            BranchEvent::Indirect { target } | BranchEvent::Return { target } => {
                self.flush_tnt();
                self.emit_ip_packet(TIP_BASE, target);
            }
            BranchEvent::TraceStart { ip } => {
                self.flush_tnt();
                self.emit_ip_packet(TIP_PGE_BASE, ip);
            }
            BranchEvent::TraceStop { ip } => {
                self.flush_tnt();
                self.emit_ip_packet(TIP_PGD_BASE, ip);
            }
            BranchEvent::Overflow => {
                self.flush_tnt();
                self.emit_two(OPC_ESCAPE, OPC_OVF);
                // Real hardware re-establishes the IP context after a gap;
                // the decoder resets on OVF, so the encoder must too or the
                // first IP packet after the gap would compress against a
                // context the decoder no longer has.
                self.last_ip = 0;
            }
        }
        self.maybe_psb();
    }

    /// Emits an asynchronous FUP packet (used by the snapshot facility to
    /// mark the point at which a snapshot was requested).
    pub fn fup(&mut self, ip: u64) {
        self.flush_tnt();
        self.emit_ip_packet(FUP_BASE, ip);
    }

    /// Flushes pending TNT bits and a final TIP.PGD, returning the full
    /// packet stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_tnt();
        if self.started {
            let ip = self.last_ip;
            self.emit_ip_packet(TIP_PGD_BASE, ip);
        }
        self.out
    }

    /// Flushes pending TNT bits and drains the bytes produced so far,
    /// leaving the encoder usable (used for incremental AUX writes).
    pub fn drain(&mut self) -> Vec<u8> {
        self.flush_tnt();
        std::mem::take(&mut self.out)
    }

    // ----- packet emission -------------------------------------------------

    fn emit_psb_group(&mut self) {
        for _ in 0..8 {
            self.out.push(OPC_ESCAPE);
            self.out.push(OPC_PSB);
        }
        self.emit_two(OPC_ESCAPE, OPC_PSBEND);
        self.bytes_since_psb = 0;
        // PSB resets last-IP context on real hardware.
        self.last_ip = 0;
    }

    fn emit_mode(&mut self, payload: u8) {
        self.out.push(OPC_MODE);
        self.out.push(payload);
        self.bytes_since_psb += 2;
    }

    fn emit_two(&mut self, a: u8, b: u8) {
        self.out.push(a);
        self.out.push(b);
        self.bytes_since_psb += 2;
    }

    fn emit_ip_packet(&mut self, base: u8, ip: u64) {
        let (code, nbytes) = ip_compression(self.last_ip, ip);
        let header = base | (code << 5);
        self.out.push(header);
        self.out.extend_from_slice(&ip.to_le_bytes()[..nbytes]);
        self.bytes_since_psb += 1 + nbytes;
        self.last_ip = ip;
    }

    fn flush_tnt(&mut self) {
        while !self.pending_tnt.is_empty() {
            if self.pending_tnt.len() >= self.config.prefer_long_tnt_at {
                let take = self.pending_tnt.len().min(LONG_TNT_CAPACITY);
                let bits: Vec<bool> = self.pending_tnt.drain(..take).collect();
                // Long TNT: escape + opcode + 6 payload bytes. Bits are
                // packed LSB-first with a stop bit above the last one.
                let mut payload: u64 = 0;
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        payload |= 1 << i;
                    }
                }
                payload |= 1 << bits.len(); // stop bit
                self.out.push(OPC_ESCAPE);
                self.out.push(OPC_LONG_TNT);
                self.out.extend_from_slice(&payload.to_le_bytes()[..6]);
                self.bytes_since_psb += 8;
            } else {
                let take = self.pending_tnt.len().min(SHORT_TNT_CAPACITY);
                let bits: Vec<bool> = self.pending_tnt.drain(..take).collect();
                // Short TNT: single byte, bit0 = 0, bits start at bit 1,
                // stop bit above the last one.
                let mut byte: u8 = 0;
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        byte |= 1 << (i + 1);
                    }
                }
                byte |= 1 << (bits.len() + 1); // stop bit
                self.out.push(byte);
                self.bytes_since_psb += 1;
            }
        }
    }

    fn maybe_psb(&mut self) {
        if self.config.psb_interval_bytes > 0
            && self.bytes_since_psb >= self.config.psb_interval_bytes
        {
            self.flush_tnt();
            self.emit_psb_group();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PSB_LEN;

    #[test]
    fn begin_emits_psb_header() {
        let mut enc = PacketEncoder::new();
        enc.begin(0x400000);
        let bytes = enc.finish();
        assert!(bytes.len() > PSB_LEN);
        assert_eq!(&bytes[..2], &[OPC_ESCAPE, OPC_PSB]);
    }

    #[test]
    fn conditional_branches_are_compressed_into_tnt_bits() {
        let mut enc = PacketEncoder::new();
        enc.begin(0);
        let header = enc.bytes();
        for _ in 0..6 {
            enc.branch(&BranchEvent::Conditional { taken: true });
        }
        let bytes = enc.drain();
        // 6 conditionals fit in a single short TNT byte.
        assert_eq!(bytes.len() - header, 1);
    }

    #[test]
    fn long_runs_use_long_tnt_packets() {
        let mut enc = PacketEncoder::new();
        for i in 0..47 {
            enc.branch(&BranchEvent::Conditional { taken: i % 2 == 0 });
        }
        let bytes = enc.drain();
        // One long TNT packet: 2-byte opcode + 6 payload bytes.
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn repeated_nearby_targets_compress_well() {
        let mut far = PacketEncoder::new();
        let mut near = PacketEncoder::new();
        for i in 0..100u64 {
            far.branch(&BranchEvent::Indirect {
                target: i * 0x1_0000_0000_0000,
            });
            near.branch(&BranchEvent::Indirect {
                target: 0x40_0000 + i * 4,
            });
        }
        assert!(near.bytes() < far.bytes());
    }

    #[test]
    fn branch_counter_counts_all_kinds() {
        let mut enc = PacketEncoder::new();
        enc.branch(&BranchEvent::Conditional { taken: true });
        enc.branch(&BranchEvent::Indirect { target: 8 });
        enc.branch(&BranchEvent::Return { target: 16 });
        assert_eq!(enc.branches(), 3);
    }

    #[test]
    fn periodic_psb_is_emitted() {
        let mut enc = PacketEncoder::with_config(EncoderConfig {
            psb_interval_bytes: 64,
            ..EncoderConfig::default()
        });
        enc.begin(0);
        for i in 0..200u64 {
            enc.branch(&BranchEvent::Indirect {
                target: i * 0x9999_7777,
            });
        }
        let bytes = enc.finish();
        let psb_count = bytes
            .windows(4)
            .filter(|w| *w == [OPC_ESCAPE, OPC_PSB, OPC_ESCAPE, OPC_PSB])
            .count();
        assert!(psb_count >= 2, "expected periodic PSBs, saw {psb_count}");
    }
}
