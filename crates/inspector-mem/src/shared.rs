//! The shared memory image: the simulated equivalent of the memory-mapped
//! file that backs the globals and the heap in INSPECTOR's threads-as-
//! processes design.
//!
//! All threads hold an `Arc<SharedImage>`. In *native* mode they read and
//! write it directly (like ordinary pthreads sharing an address space); in
//! *tracked* mode they only read it on first touch and publish their writes
//! through [`crate::commit`] at synchronization points.
//!
//! Page contents are stored as relaxed atomic bytes so that concurrent
//! direct access (native mode) and concurrent commits (tracked mode) are
//! well-defined in Rust without imposing a lock on every access. Atomicity
//! across multi-byte values is the application's responsibility, exactly as
//! POSIX requires for pthreads programs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::addr::{split_by_page, PageId, VirtAddr, DEFAULT_PAGE_SIZE};
use crate::region::{Region, RegionKind};

/// One shared page; bytes are individually atomic (relaxed).
#[derive(Debug)]
pub struct SharedPage {
    bytes: Box<[AtomicU8]>,
}

impl SharedPage {
    /// Creates a zero-filled page of `page_size` bytes.
    pub fn zeroed(page_size: usize) -> Self {
        let bytes = (0..page_size).map(|_| AtomicU8::new(0)).collect();
        SharedPage { bytes }
    }

    /// Page size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the page has zero size (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Copies the page contents into a fresh buffer (used to create twins).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        for (i, out) in buf.iter_mut().enumerate() {
            *out = self.bytes[offset + i].load(Ordering::Relaxed);
        }
    }

    /// Writes `data` starting at `offset`.
    pub fn write(&self, offset: usize, data: &[u8]) {
        for (i, &v) in data.iter().enumerate() {
            self.bytes[offset + i].store(v, Ordering::Relaxed);
        }
    }

    /// Writes a single byte.
    pub fn write_byte(&self, offset: usize, value: u8) {
        self.bytes[offset].store(value, Ordering::Relaxed);
    }

    /// Reads a single byte.
    pub fn read_byte(&self, offset: usize) -> u8 {
        self.bytes[offset].load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct ImageState {
    regions: Vec<Region>,
    next_base: u64,
}

/// The shared address-space image (globals + heap + mapped inputs).
#[derive(Debug)]
pub struct SharedImage {
    page_size: usize,
    state: RwLock<ImageState>,
    pages: RwLock<HashMap<PageId, Arc<SharedPage>>>,
}

impl SharedImage {
    /// Base address of the first mapped region; chosen away from zero so
    /// address arithmetic bugs show up as obviously-invalid addresses.
    const MAP_BASE: u64 = 0x1000_0000;

    /// Creates an image with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or not a power of two.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two() && page_size > 0,
            "page size must be a non-zero power of two"
        );
        SharedImage {
            page_size,
            state: RwLock::new(ImageState {
                regions: Vec::new(),
                next_base: Self::MAP_BASE,
            }),
            pages: RwLock::new(HashMap::new()),
        }
    }

    /// Creates a reference-counted image, the form used by the runtime.
    pub fn shared(page_size: usize) -> Arc<Self> {
        Arc::new(Self::new(page_size))
    }

    /// Creates a reference-counted image with the default 4 KiB pages.
    pub fn with_default_page_size() -> Arc<Self> {
        Self::shared(DEFAULT_PAGE_SIZE)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Maps a new heap region of `len` bytes and returns it.
    pub fn map_region(&self, name: impl Into<String>, len: u64) -> Region {
        self.map_region_kind(name, RegionKind::Heap, len)
    }

    /// Maps a new region of the given kind.
    pub fn map_region_kind(&self, name: impl Into<String>, kind: RegionKind, len: u64) -> Region {
        let mut state = self.state.write();
        let base = VirtAddr::new(state.next_base);
        let span = len.div_ceil(self.page_size as u64).max(1) * self.page_size as u64;
        state.next_base += span + self.page_size as u64; // one guard page
        let region = Region::new(name, kind, base, len, self.page_size);
        state.regions.push(region.clone());
        region
    }

    /// Maps an input region and initialises it with `data` (the `mmap` shim
    /// for input files).
    pub fn map_input(&self, name: impl Into<String>, data: &[u8]) -> Region {
        let region = self.map_region_kind(name, RegionKind::Input, data.len() as u64);
        self.write_direct(region.base(), data);
        region
    }

    /// All currently mapped regions.
    pub fn regions(&self) -> Vec<Region> {
        self.state.read().regions.clone()
    }

    /// The region containing `addr`, if any.
    pub fn region_containing(&self, addr: VirtAddr) -> Option<Region> {
        self.state
            .read()
            .regions
            .iter()
            .find(|r| r.contains(addr))
            .cloned()
    }

    /// Total bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.state.read().regions.iter().map(|r| r.len()).sum()
    }

    /// Returns the shared page object for `page`, creating it zero-filled on
    /// first use.
    pub fn page(&self, page: PageId) -> Arc<SharedPage> {
        if let Some(p) = self.pages.read().get(&page) {
            return Arc::clone(p);
        }
        let mut pages = self.pages.write();
        Arc::clone(
            pages
                .entry(page)
                .or_insert_with(|| Arc::new(SharedPage::zeroed(self.page_size))),
        )
    }

    /// Number of pages that have been materialised.
    pub fn resident_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Reads bytes directly from the shared image (native-mode access path
    /// and provenance-free inspection).
    pub fn read_direct(&self, addr: VirtAddr, buf: &mut [u8]) {
        let mut cursor = 0;
        for (page, offset, len) in split_by_page(addr, buf.len(), self.page_size) {
            self.page(page).read(offset, &mut buf[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Writes bytes directly to the shared image.
    pub fn write_direct(&self, addr: VirtAddr, data: &[u8]) {
        let mut cursor = 0;
        for (page, offset, len) in split_by_page(addr, data.len(), self.page_size) {
            self.page(page).write(offset, &data[cursor..cursor + len]);
            cursor += len;
        }
    }

    /// Reads a little-endian `u64` directly.
    pub fn read_u64_direct(&self, addr: VirtAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.read_direct(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64` directly.
    pub fn write_u64_direct(&self, addr: VirtAddr, value: u64) {
        self.write_direct(addr, &value.to_le_bytes());
    }

    /// Reads an `f64` directly.
    pub fn read_f64_direct(&self, addr: VirtAddr) -> f64 {
        f64::from_bits(self.read_u64_direct(addr))
    }

    /// Writes an `f64` directly.
    pub fn write_f64_direct(&self, addr: VirtAddr, value: f64) {
        self.write_u64_direct(addr, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let image = SharedImage::new(4096);
        let a = image.map_region("a", 10_000);
        let b = image.map_region("b", 1);
        assert!(a.end() <= b.base());
        assert_eq!(image.regions().len(), 2);
        assert_eq!(image.mapped_bytes(), 10_001);
    }

    #[test]
    fn region_lookup_by_address() {
        let image = SharedImage::new(4096);
        let a = image.map_region("a", 100);
        assert_eq!(image.region_containing(a.at(50)).unwrap().name(), "a");
        assert!(image.region_containing(VirtAddr::new(1)).is_none());
    }

    #[test]
    fn direct_read_write_roundtrip() {
        let image = SharedImage::new(4096);
        let r = image.map_region("r", 4096 * 3);
        // Cross a page boundary on purpose.
        let addr = r.base().add(4090);
        let data: Vec<u8> = (0..32).collect();
        image.write_direct(addr, &data);
        let mut out = vec![0u8; 32];
        image.read_direct(addr, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn u64_and_f64_helpers() {
        let image = SharedImage::new(4096);
        let r = image.map_region("r", 64);
        image.write_u64_direct(r.base(), 0xdead_beef);
        assert_eq!(image.read_u64_direct(r.base()), 0xdead_beef);
        image.write_f64_direct(r.at(8), 3.5);
        assert_eq!(image.read_f64_direct(r.at(8)), 3.5);
    }

    #[test]
    fn input_mapping_initialises_contents() {
        let image = SharedImage::new(4096);
        let data = b"hello world".to_vec();
        let r = image.map_input("input", &data);
        let mut out = vec![0u8; data.len()];
        image.read_direct(r.base(), &mut out);
        assert_eq!(out, data);
        assert_eq!(r.kind(), RegionKind::Input);
    }

    #[test]
    fn pages_are_materialised_lazily() {
        let image = SharedImage::new(4096);
        let _r = image.map_region("big", 4096 * 1000);
        assert_eq!(image.resident_pages(), 0);
        image.write_u64_direct(_r.base(), 1);
        assert_eq!(image.resident_pages(), 1);
    }

    #[test]
    fn snapshot_copies_page_contents() {
        let image = SharedImage::new(4096);
        let r = image.map_region("r", 4096);
        image.write_direct(r.base(), &[1, 2, 3]);
        let page = image.page(r.base().page(4096));
        let snap = page.snapshot();
        assert_eq!(&snap[..3], &[1, 2, 3]);
        assert_eq!(snap.len(), 4096);
        // Mutating the page afterwards does not affect the snapshot.
        image.write_direct(r.base(), &[9]);
        assert_eq!(snap[0], 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn page_size_must_be_power_of_two() {
        SharedImage::new(3000);
    }

    #[test]
    fn shared_page_byte_accessors() {
        let page = SharedPage::zeroed(64);
        assert_eq!(page.len(), 64);
        assert!(!page.is_empty());
        page.write_byte(5, 0xab);
        assert_eq!(page.read_byte(5), 0xab);
    }
}
