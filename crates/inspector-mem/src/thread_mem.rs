//! One thread's private view of the shared address space.
//!
//! This is the software analogue of what a thread-as-process sees in the real
//! INSPECTOR: a private page table whose protection bits are reset at the
//! start of every sub-computation, private copy-on-write copies of the pages
//! it writes, and a commit operation that publishes byte-level diffs to the
//! shared image at synchronization points.
//!
//! The important behavioural properties preserved from the paper:
//!
//! * the **first** read or write of a page in a tracking interval "faults"
//!   (is recorded and counted); subsequent accesses are free;
//! * writes are invisible to other threads until [`ThreadMemory::commit`];
//! * reads return the thread's own uncommitted writes (read-your-writes) and
//!   otherwise the shared image as of the first access;
//! * in [`TrackingMode::Native`] none of this happens — accesses go straight
//!   to the shared image, which is the pthreads baseline the evaluation
//!   compares against.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::addr::{split_by_page, PageId, VirtAddr};
use crate::commit::{apply_diff, diff_page, CommitOutcome};
use crate::shared::SharedImage;
use crate::stats::MemStats;

/// Whether accesses are tracked (INSPECTOR mode) or direct (native pthreads
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TrackingMode {
    /// Full provenance tracking: protection faults, COW twins, commit diffs.
    #[default]
    Tracked,
    /// Native baseline: direct access to the shared image, no tracking.
    Native,
}

use serde::{Deserialize, Serialize};

/// A first-touch access recorded during the current tracking interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The page that was touched.
    pub page: PageId,
    /// `true` if the first touch was (or later became) a write.
    pub write: bool,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct PageProtection {
    readable: bool,
    writable: bool,
}

#[derive(Debug)]
struct PrivatePage {
    /// Contents of the shared page when this thread first wrote it.
    twin: Vec<u8>,
    /// The thread's working copy (twin + this thread's writes).
    working: Vec<u8>,
}

/// A thread's private, protection-tracked view of the shared image.
#[derive(Debug)]
pub struct ThreadMemory {
    image: Arc<SharedImage>,
    mode: TrackingMode,
    page_size: usize,
    protections: HashMap<PageId, PageProtection>,
    private: HashMap<PageId, PrivatePage>,
    /// First-touch log of the current tracking interval, drained by the
    /// runtime at synchronization points.
    access_log: Vec<AccessRecord>,
    stats: MemStats,
}

impl ThreadMemory {
    /// Creates a thread view over `image`.
    pub fn new(image: Arc<SharedImage>, mode: TrackingMode) -> Self {
        let page_size = image.page_size();
        ThreadMemory {
            image,
            mode,
            page_size,
            protections: HashMap::new(),
            private: HashMap::new(),
            access_log: Vec::new(),
            stats: MemStats::default(),
        }
    }

    /// The tracking mode this view was created with.
    pub fn mode(&self) -> TrackingMode {
        self.mode
    }

    /// The shared image backing this view.
    pub fn image(&self) -> &Arc<SharedImage> {
        &self.image
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Drains the first-touch access log of the current interval.
    ///
    /// The runtime calls this at every synchronization point and feeds the
    /// records into the provenance recorder as the read/write set of the
    /// finished sub-computation.
    pub fn take_access_log(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.access_log)
    }

    /// Starts a new tracking interval: equivalent to `mprotect(PROT_NONE)`
    /// over the whole shared mapping — every page will fault again on first
    /// access.
    pub fn protect_all(&mut self) {
        if self.mode == TrackingMode::Native {
            return;
        }
        self.protections.clear();
    }

    /// Number of private (copy-on-write) pages currently held.
    pub fn private_pages(&self) -> usize {
        self.private.len()
    }

    // ----- raw byte access -------------------------------------------------

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) {
        if self.mode == TrackingMode::Native {
            self.image.read_direct(addr, buf);
            return;
        }
        let mut cursor = 0;
        for (page, offset, len) in split_by_page(addr, buf.len(), self.page_size) {
            self.fault_on_read(page);
            let dst = &mut buf[cursor..cursor + len];
            if let Some(p) = self.private.get(&page) {
                dst.copy_from_slice(&p.working[offset..offset + len]);
            } else {
                self.image.page(page).read(offset, dst);
            }
            cursor += len;
        }
    }

    /// Writes `data` starting at `addr` (buffered until the next commit).
    pub fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) {
        if self.mode == TrackingMode::Native {
            self.image.write_direct(addr, data);
            return;
        }
        let mut cursor = 0;
        for (page, offset, len) in split_by_page(addr, data.len(), self.page_size) {
            self.fault_on_write(page);
            let p = self
                .private
                .get_mut(&page)
                .expect("write fault must create the private copy");
            p.working[offset..offset + len].copy_from_slice(&data[cursor..cursor + len]);
            cursor += len;
        }
    }

    // ----- typed helpers ---------------------------------------------------

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: VirtAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: VirtAddr, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: VirtAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: VirtAddr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `i64`.
    pub fn read_i64(&mut self, addr: VirtAddr) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Writes an `i64`.
    pub fn write_i64(&mut self, addr: VirtAddr, value: i64) {
        self.write_u64(addr, value as u64);
    }

    /// Reads an `f64`.
    pub fn read_f64(&mut self, addr: VirtAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: VirtAddr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self, addr: VirtAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b);
        b[0]
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: VirtAddr, value: u8) {
        self.write_bytes(addr, &[value]);
    }

    // ----- commit ----------------------------------------------------------

    /// Publishes the thread's buffered writes to the shared image
    /// (byte-level diff against the twin, last-writer-wins), drops the
    /// private copies and re-protects every page.
    ///
    /// In native mode this is a no-op (writes were already direct).
    pub fn commit(&mut self) -> CommitOutcome {
        if self.mode == TrackingMode::Native {
            return CommitOutcome::default();
        }
        let start = Instant::now();
        let mut outcome = CommitOutcome::default();
        for (page, p) in self.private.drain() {
            outcome.pages_examined += 1;
            let diff = diff_page(&p.twin, &p.working);
            if !diff.is_empty() {
                outcome.pages_changed += 1;
                outcome.bytes_written += diff.changed_bytes();
                apply_diff(&self.image.page(page), &diff);
            }
        }
        self.protections.clear();
        self.stats.commits += 1;
        self.stats.pages_examined += outcome.pages_examined as u64;
        self.stats.pages_committed += outcome.pages_changed as u64;
        self.stats.bytes_committed += outcome.bytes_written as u64;
        self.stats.commit_time += start.elapsed();
        outcome
    }

    /// Discards buffered writes without publishing them (used when a thread
    /// aborts). Private copies and protections are dropped.
    pub fn discard(&mut self) {
        self.private.clear();
        self.protections.clear();
        self.access_log.clear();
    }

    // ----- fault path ------------------------------------------------------

    fn fault_on_read(&mut self, page: PageId) {
        let prot = self.protections.entry(page).or_default();
        if prot.readable {
            return;
        }
        let start = Instant::now();
        prot.readable = true;
        self.stats.read_faults += 1;
        self.access_log.push(AccessRecord { page, write: false });
        self.stats.fault_time += start.elapsed();
    }

    fn fault_on_write(&mut self, page: PageId) {
        let needs_fault = !self
            .protections
            .get(&page)
            .map(|p| p.writable)
            .unwrap_or(false);
        if needs_fault {
            let start = Instant::now();
            let prot = self.protections.entry(page).or_default();
            prot.writable = true;
            prot.readable = true;
            self.stats.write_faults += 1;
            self.access_log.push(AccessRecord { page, write: true });
            if !self.private.contains_key(&page) {
                let twin = self.image.page(page).snapshot();
                self.private.insert(
                    page,
                    PrivatePage {
                        working: twin.clone(),
                        twin,
                    },
                );
                self.stats.pages_copied += 1;
            }
            self.stats.fault_time += start.elapsed();
        } else if !self.private.contains_key(&page) {
            // Can only happen if protections survived a commit, which clears
            // private pages; recreate the copy defensively.
            let twin = self.image.page(page).snapshot();
            self.private.insert(
                page,
                PrivatePage {
                    working: twin.clone(),
                    twin,
                },
            );
            self.stats.pages_copied += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: TrackingMode) -> (Arc<SharedImage>, ThreadMemory, VirtAddr) {
        let image = SharedImage::shared(4096);
        let region = image.map_region("heap", 4096 * 8);
        let mem = ThreadMemory::new(Arc::clone(&image), mode);
        (image, mem, region.base())
    }

    #[test]
    fn tracked_writes_are_buffered_until_commit() {
        let (image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u64(base, 99);
        assert_eq!(mem.read_u64(base), 99, "read-your-writes");
        assert_eq!(image.read_u64_direct(base), 0, "not yet visible");
        mem.commit();
        assert_eq!(image.read_u64_direct(base), 99);
        assert_eq!(mem.private_pages(), 0, "private copies dropped at commit");
    }

    #[test]
    fn native_writes_are_immediate() {
        let (image, mut mem, base) = setup(TrackingMode::Native);
        mem.write_u64(base, 7);
        assert_eq!(image.read_u64_direct(base), 7);
        assert_eq!(mem.stats().total_faults(), 0);
        assert!(mem.take_access_log().is_empty());
    }

    #[test]
    fn first_touch_faults_once_per_interval() {
        let (_image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.read_u64(base);
        mem.read_u64(base.add(8)); // same page
        assert_eq!(mem.stats().read_faults, 1);
        mem.write_u64(base, 1);
        mem.write_u64(base.add(16), 2);
        assert_eq!(mem.stats().write_faults, 1);

        // New interval: protections reset, faults happen again.
        mem.commit();
        mem.protect_all();
        mem.read_u64(base);
        assert_eq!(mem.stats().read_faults, 2);
    }

    #[test]
    fn access_log_records_first_touches() {
        let (_image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.read_u64(base);
        mem.write_u64(base.add(4096), 1);
        let log = mem.take_access_log();
        assert_eq!(log.len(), 2);
        assert!(!log[0].write);
        assert!(log[1].write);
        assert!(mem.take_access_log().is_empty(), "log is drained");
    }

    #[test]
    fn updates_from_other_threads_visible_after_reprotect() {
        let (image, mut mem, base) = setup(TrackingMode::Tracked);
        assert_eq!(mem.read_u64(base), 0);
        // Another thread commits a new value directly.
        image.write_u64_direct(base, 123);
        // Still the old interval: our view has no private copy of the page
        // (we only read it), so a fresh read sees the update only after the
        // protections are reset — which is fine under RC since visibility is
        // only guaranteed after a synchronization point anyway.
        mem.protect_all();
        assert_eq!(mem.read_u64(base), 123);
    }

    #[test]
    fn private_copy_isolates_from_concurrent_commits() {
        let (image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u64(base, 5); // creates twin + working copy
        image.write_u64_direct(base.add(8), 77); // concurrent write by other thread
                                                 // Our working copy was taken before the concurrent write, so we do
                                                 // not see it until the next interval.
        assert_eq!(mem.read_u64(base.add(8)), 0);
        mem.commit();
        mem.protect_all();
        assert_eq!(mem.read_u64(base.add(8)), 77);
    }

    #[test]
    fn commit_preserves_other_threads_disjoint_bytes() {
        let (image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u64(base, 1); // our write at offset 0
        image.write_u64_direct(base.add(8), 2); // concurrent write at offset 8
        mem.commit();
        // Both survive because the commit only writes changed bytes.
        assert_eq!(image.read_u64_direct(base), 1);
        assert_eq!(image.read_u64_direct(base.add(8)), 2);
    }

    #[test]
    fn commit_outcome_counts_changes() {
        let (_image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u64(base, 1);
        mem.write_u64(base.add(4096), 2);
        let outcome = mem.commit();
        assert_eq!(outcome.pages_examined, 2);
        assert_eq!(outcome.pages_changed, 2);
        assert_eq!(outcome.bytes_written, 2, "one non-zero byte per u64");
        assert_eq!(mem.stats().commits, 1);
    }

    #[test]
    fn discard_throws_away_buffered_writes() {
        let (image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u64(base, 42);
        mem.discard();
        mem.commit();
        assert_eq!(image.read_u64_direct(base), 0);
    }

    #[test]
    fn reads_crossing_page_boundary_fault_both_pages() {
        let (_image, mut mem, base) = setup(TrackingMode::Tracked);
        let boundary = base.add(4096 - 4);
        mem.read_u64(boundary);
        assert_eq!(mem.stats().read_faults, 2);
    }

    #[test]
    fn typed_helpers_roundtrip() {
        let (_image, mut mem, base) = setup(TrackingMode::Tracked);
        mem.write_u32(base, 0xaabb);
        assert_eq!(mem.read_u32(base), 0xaabb);
        mem.write_i64(base.add(8), -5);
        assert_eq!(mem.read_i64(base.add(8)), -5);
        mem.write_f64(base.add(16), 2.25);
        assert_eq!(mem.read_f64(base.add(16)), 2.25);
        mem.write_u8(base.add(24), 9);
        assert_eq!(mem.read_u8(base.add(24)), 9);
    }
}
