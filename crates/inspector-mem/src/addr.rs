//! Virtual addresses and page arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Default page size used by the simulated MMU (matches x86-64).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A virtual address inside the simulated shared address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates an address from its raw value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The page containing this address, for the given page size.
    pub fn page(self, page_size: usize) -> PageId {
        PageId::new(self.0 / page_size as u64)
    }

    /// Byte offset of this address within its page.
    pub fn page_offset(self, page_size: usize) -> usize {
        (self.0 % page_size as u64) as usize
    }

    /// Address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }

    /// Distance in bytes from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn offset_from(self, other: VirtAddr) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("offset_from: other is past self")
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(value: u64) -> Self {
        VirtAddr(value)
    }
}

/// A page number (virtual address divided by the page size).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page identifier from its page number.
    pub const fn new(number: u64) -> Self {
        PageId(number)
    }

    /// Returns the page number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// The first address of this page.
    pub fn base(self, page_size: usize) -> VirtAddr {
        VirtAddr::new(self.0 * page_size as u64)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Splits the byte range `[addr, addr + len)` into per-page sub-ranges.
///
/// Each item is `(page, offset_in_page, length)`. Used by the access path so
/// that a read or write spanning a page boundary touches (and faults on)
/// every page it covers, exactly as the hardware would.
pub fn split_by_page(
    addr: VirtAddr,
    len: usize,
    page_size: usize,
) -> impl Iterator<Item = (PageId, usize, usize)> {
    let mut remaining = len;
    let mut cursor = addr;
    std::iter::from_fn(move || {
        if remaining == 0 {
            return None;
        }
        let page = cursor.page(page_size);
        let offset = cursor.page_offset(page_size);
        let chunk = remaining.min(page_size - offset);
        cursor = cursor.add(chunk as u64);
        remaining -= chunk;
        Some((page, offset, chunk))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = VirtAddr::new(4096 * 3 + 17);
        assert_eq!(a.page(4096), PageId::new(3));
        assert_eq!(a.page_offset(4096), 17);
        assert_eq!(PageId::new(3).base(4096), VirtAddr::new(4096 * 3));
    }

    #[test]
    fn add_and_offset_from() {
        let a = VirtAddr::new(100);
        let b = a.add(28);
        assert_eq!(b.raw(), 128);
        assert_eq!(b.offset_from(a), 28);
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_when_reversed() {
        VirtAddr::new(1).offset_from(VirtAddr::new(2));
    }

    #[test]
    fn split_by_page_single_page() {
        let parts: Vec<_> = split_by_page(VirtAddr::new(10), 20, 4096).collect();
        assert_eq!(parts, vec![(PageId::new(0), 10, 20)]);
    }

    #[test]
    fn split_by_page_crosses_boundary() {
        let parts: Vec<_> = split_by_page(VirtAddr::new(4090), 16, 4096).collect();
        assert_eq!(
            parts,
            vec![(PageId::new(0), 4090, 6), (PageId::new(1), 0, 10)]
        );
    }

    #[test]
    fn split_by_page_spans_multiple_pages() {
        let parts: Vec<_> = split_by_page(VirtAddr::new(0), 4096 * 2 + 5, 4096).collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2], (PageId::new(2), 0, 5));
    }

    #[test]
    fn split_by_page_empty_range() {
        assert_eq!(split_by_page(VirtAddr::new(0), 0, 4096).count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(255).to_string(), "0xff");
        assert_eq!(PageId::new(9).to_string(), "page#9");
    }
}
