//! Counters and timers for the memory substrate.
//!
//! These feed the threading-library half of the overhead breakdown
//! (Figure 6) and the page-fault statistics table (Figure 7).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-thread memory-tracking statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Simulated read-protection faults (first read of a page in a
    /// sub-computation).
    pub read_faults: u64,
    /// Simulated write-protection faults (first write of a page in a
    /// sub-computation).
    pub write_faults: u64,
    /// Private copy-on-write page copies created.
    pub pages_copied: u64,
    /// Dirty pages examined at commits.
    pub pages_examined: u64,
    /// Pages that actually changed and were committed.
    pub pages_committed: u64,
    /// Bytes written to the shared image by commits.
    pub bytes_committed: u64,
    /// Number of commit operations (one per synchronization point).
    pub commits: u64,
    /// Wall-clock time spent in the fault path (protection bookkeeping plus
    /// twin copying).
    #[serde(with = "duration_nanos")]
    pub fault_time: Duration,
    /// Wall-clock time spent diffing and committing dirty pages.
    #[serde(with = "duration_nanos")]
    pub commit_time: Duration,
}

impl MemStats {
    /// Total fault count (read + write).
    pub fn total_faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Total time attributed to the threading library's memory tracking.
    pub fn tracking_time(&self) -> Duration {
        self.fault_time + self.commit_time
    }

    /// Merges another thread's statistics into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.read_faults += other.read_faults;
        self.write_faults += other.write_faults;
        self.pages_copied += other.pages_copied;
        self.pages_examined += other.pages_examined;
        self.pages_committed += other.pages_committed;
        self.bytes_committed += other.bytes_committed;
        self.commits += other.commits;
        self.fault_time += other.fault_time;
        self.commit_time += other.commit_time;
    }
}

// The offline serde stand-in's derives ignore field adapters, leaving these
// functions unreferenced; they are the real wire format once the actual
// serde is vendored.
#[allow(dead_code)]
mod duration_nanos {
    use std::time::Duration;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_nanos() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_nanos(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = MemStats {
            read_faults: 2,
            write_faults: 3,
            fault_time: Duration::from_millis(5),
            commit_time: Duration::from_millis(7),
            ..MemStats::default()
        };
        let b = MemStats {
            read_faults: 10,
            pages_copied: 4,
            commits: 1,
            ..MemStats::default()
        };
        a.merge(&b);
        assert_eq!(a.read_faults, 12);
        assert_eq!(a.total_faults(), 15);
        assert_eq!(a.pages_copied, 4);
        assert_eq!(a.commits, 1);
        assert_eq!(a.tracking_time(), Duration::from_millis(12));
    }
}
