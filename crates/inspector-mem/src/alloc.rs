//! A simple shared-heap allocator: the `malloc`/`free` shim.
//!
//! INSPECTOR interposes on the allocator so that heap objects live in the
//! shared memory-mapped region (and are therefore tracked). The allocator
//! here is intentionally simple — first-fit over a free list with a bump
//! fallback — because the evaluation only depends on allocation *behaviour*
//! (e.g. `reverse_index` performing very many small allocations from many
//! threads), not on allocator sophistication.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::addr::VirtAddr;
use crate::region::Region;

/// Alignment applied to every allocation.
const ALIGN: u64 = 16;

/// Allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Number of `alloc` calls served.
    pub allocations: u64,
    /// Number of `free` calls served.
    pub frees: u64,
    /// Bytes currently allocated.
    pub live_bytes: u64,
    /// High-water mark of allocated bytes.
    pub peak_bytes: u64,
}

#[derive(Debug)]
struct HeapState {
    /// Next never-used address (bump pointer).
    bump: u64,
    /// Free blocks: base -> length.
    free: BTreeMap<u64, u64>,
    /// Live blocks: base -> length.
    live: BTreeMap<u64, u64>,
    stats: AllocStats,
}

/// Error returned when the heap region is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The allocation size that could not be served.
    pub requested: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared heap exhausted while allocating {} bytes",
            self.requested
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A thread-safe first-fit allocator over one heap [`Region`].
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    region: Region,
    state: Arc<Mutex<HeapState>>,
}

impl HeapAllocator {
    /// Creates an allocator managing `region`.
    pub fn new(region: Region) -> Self {
        let bump = region.base().raw();
        HeapAllocator {
            region,
            state: Arc::new(Mutex::new(HeapState {
                bump,
                free: BTreeMap::new(),
                live: BTreeMap::new(),
                stats: AllocStats::default(),
            })),
        }
    }

    /// The region this allocator manages.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Allocates `size` bytes (16-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when neither the free list nor the bump area
    /// can serve the request.
    pub fn alloc(&self, size: u64) -> Result<VirtAddr, OutOfMemory> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        let mut st = self.state.lock();

        // First fit from the free list.
        let found = st
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&base, &len)| (base, len));
        let base = if let Some((base, len)) = found {
            st.free.remove(&base);
            if len > size {
                st.free.insert(base + size, len - size);
            }
            base
        } else {
            // Bump allocation.
            let base = st.bump;
            let end = base + size;
            if end > self.region.end().raw() {
                return Err(OutOfMemory { requested: size });
            }
            st.bump = end;
            base
        };

        st.live.insert(base, size);
        st.stats.allocations += 1;
        st.stats.live_bytes += size;
        st.stats.peak_bytes = st.stats.peak_bytes.max(st.stats.live_bytes);
        Ok(VirtAddr::new(base))
    }

    /// Frees a block previously returned by [`alloc`](Self::alloc).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation (double free or wild free),
    /// mirroring how glibc aborts on heap corruption.
    pub fn free(&self, addr: VirtAddr) {
        let mut st = self.state.lock();
        let size = st
            .live
            .remove(&addr.raw())
            .unwrap_or_else(|| panic!("free of unallocated address {addr}"));
        st.stats.frees += 1;
        st.stats.live_bytes -= size;
        // Insert into the free list, coalescing with adjacent blocks.
        let mut base = addr.raw();
        let mut len = size;
        if let Some((&prev_base, &prev_len)) = st.free.range(..base).next_back() {
            if prev_base + prev_len == base {
                st.free.remove(&prev_base);
                base = prev_base;
                len += prev_len;
            }
        }
        if let Some(&next_len) = st.free.get(&(base + len)) {
            st.free.remove(&(base + len));
            len += next_len;
        }
        st.free.insert(base, len);
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        self.state.lock().stats
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.state.lock().live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedImage;

    fn allocator(len: u64) -> HeapAllocator {
        let image = SharedImage::new(4096);
        HeapAllocator::new(image.map_region("heap", len))
    }

    #[test]
    fn alloc_returns_aligned_disjoint_blocks() {
        let a = allocator(4096 * 4);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(100).unwrap();
        assert_eq!(x.raw() % ALIGN, 0);
        assert_eq!(y.raw() % ALIGN, 0);
        assert!(y.raw() >= x.raw() + 16);
        assert_eq!(a.live_allocations(), 2);
    }

    #[test]
    fn free_allows_reuse() {
        let a = allocator(4096);
        let x = a.alloc(64).unwrap();
        a.free(x);
        let y = a.alloc(32).unwrap();
        assert_eq!(y, x, "freed block should be reused first-fit");
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let a = allocator(4096);
        let x = a.alloc(64).unwrap();
        let y = a.alloc(64).unwrap();
        let _z = a.alloc(64).unwrap();
        a.free(x);
        a.free(y);
        // x and y coalesce into a 128-byte block that can serve this:
        let big = a.alloc(128).unwrap();
        assert_eq!(big, x);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let a = allocator(64);
        assert!(a.alloc(32).is_ok());
        assert!(a.alloc(32).is_ok());
        let err = a.alloc(32).unwrap_err();
        assert_eq!(err.requested, 32);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    #[should_panic(expected = "free of unallocated address")]
    fn double_free_panics() {
        let a = allocator(4096);
        let x = a.alloc(8).unwrap();
        a.free(x);
        a.free(x);
    }

    #[test]
    fn stats_track_peak_and_live() {
        let a = allocator(4096);
        let x = a.alloc(100).unwrap();
        let _y = a.alloc(100).unwrap();
        a.free(x);
        let s = a.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, 112); // 100 rounded up to 112
        assert_eq!(s.peak_bytes, 224);
    }

    #[test]
    fn allocator_is_shareable_across_clones() {
        let a = allocator(4096);
        let b = a.clone();
        let x = a.alloc(16).unwrap();
        b.free(x);
        assert_eq!(a.live_allocations(), 0);
    }
}
