//! Mapped regions of the shared address space.
//!
//! A region corresponds to one `mmap` mapping managed by the INSPECTOR
//! library: the globals segment, the shared heap, or an input file mapped by
//! the `mmap` shim (paper §V-A, *Input support*).

use serde::{Deserialize, Serialize};

use crate::addr::{PageId, VirtAddr};

/// Purpose of a mapped region, used by provenance consumers to tell input
/// pages apart from heap/global pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Global/static data of the traced program.
    Globals,
    /// The shared heap managed by the allocator shim.
    Heap,
    /// A read-only (from the application's perspective) input file mapping.
    Input,
}

/// A contiguous mapped range of the shared address space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    name: String,
    kind: RegionKind,
    base: VirtAddr,
    len: u64,
    page_size: usize,
}

impl Region {
    pub(crate) fn new(
        name: impl Into<String>,
        kind: RegionKind,
        base: VirtAddr,
        len: u64,
        page_size: usize,
    ) -> Self {
        Region {
            name: name.into(),
            kind,
            base,
            len,
            page_size,
        }
    }

    /// Human-readable name given at mapping time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the region is used for.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// First address of the region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.len)
    }

    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Address of the `index`-th byte of the region.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn at(&self, index: u64) -> VirtAddr {
        assert!(index < self.len, "region offset {index} out of bounds");
        self.base.add(index)
    }

    /// All pages covered by the region.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        let first = self.base.page(self.page_size).number();
        let last = if self.len == 0 {
            first
        } else {
            self.base.add(self.len - 1).page(self.page_size).number() + 1
        };
        (first..last).map(PageId::new)
    }

    /// Number of pages covered by the region.
    pub fn page_count(&self) -> usize {
        self.pages().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(
            "input",
            RegionKind::Input,
            VirtAddr::new(4096 * 10),
            4096 * 2 + 100,
            4096,
        )
    }

    #[test]
    fn bounds_and_contains() {
        let r = region();
        assert!(r.contains(r.base()));
        assert!(r.contains(r.at(100)));
        assert!(!r.contains(r.end()));
        assert!(!r.is_empty());
        assert_eq!(r.len(), 4096 * 2 + 100);
    }

    #[test]
    fn pages_cover_partial_last_page() {
        let r = region();
        let pages: Vec<_> = r.pages().collect();
        assert_eq!(
            pages,
            vec![PageId::new(10), PageId::new(11), PageId::new(12)]
        );
        assert_eq!(r.page_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        region().at(4096 * 3);
    }

    #[test]
    fn empty_region_has_no_pages() {
        let r = Region::new("empty", RegionKind::Heap, VirtAddr::new(0), 0, 4096);
        assert!(r.is_empty());
        assert_eq!(r.page_count(), 0);
    }
}
