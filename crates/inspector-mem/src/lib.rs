//! # inspector-mem
//!
//! The memory substrate that INSPECTOR's threading library is built on
//! (paper §V-A). The real system relies on three OS/hardware facilities:
//!
//! 1. **MMU-assisted memory tracking** — `mprotect(PROT_NONE)` at the start
//!    of every sub-computation plus a SIGSEGV handler derives page-granular
//!    read and write sets from the first access to each page;
//! 2. **threads as processes** — every thread runs in its own process so the
//!    page protections (and private copies) of different threads are
//!    independent;
//! 3. **shared-memory commit** — the globals and the heap are backed by a
//!    memory-mapped file; each thread writes to private copy-on-write pages
//!    and publishes a byte-level diff at synchronization points
//!    (last-writer-wins), which implements Release Consistency.
//!
//! None of those facilities are portable (or available to a pure-Rust
//! library), so this crate provides software equivalents with the same
//! observable behaviour: a [`shared::SharedImage`] plays the role of the
//! memory-mapped file, a [`thread_mem::ThreadMemory`] plays the role of one
//! thread's private address space (protection bits, fault accounting,
//! copy-on-write twins), and [`commit`] implements the byte-level diff and
//! last-writer-wins merge.
//!
//! ```
//! use std::sync::Arc;
//! use inspector_mem::shared::SharedImage;
//! use inspector_mem::thread_mem::{ThreadMemory, TrackingMode};
//!
//! let image = SharedImage::shared(4096);
//! let region = image.map_region("heap", 4096 * 4);
//! let mut mem = ThreadMemory::new(Arc::clone(&image), TrackingMode::Tracked);
//! mem.write_u64(region.base(), 42);
//! assert_eq!(mem.read_u64(region.base()), 42);
//! // Nothing is visible in the shared image until the thread commits.
//! assert_eq!(image.read_u64_direct(region.base()), 0);
//! mem.commit();
//! assert_eq!(image.read_u64_direct(region.base()), 42);
//! ```

pub mod addr;
pub mod alloc;
pub mod commit;
pub mod region;
pub mod shared;
pub mod stats;
pub mod thread_mem;

pub use addr::{PageId, VirtAddr, DEFAULT_PAGE_SIZE};
pub use alloc::HeapAllocator;
pub use region::Region;
pub use shared::SharedImage;
pub use stats::MemStats;
pub use thread_mem::{AccessRecord, ThreadMemory, TrackingMode};
