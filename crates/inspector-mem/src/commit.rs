//! Byte-level diffing and the last-writer-wins shared-memory commit.
//!
//! At every synchronization point a tracked thread compares each dirty
//! private page against its *twin* (the copy taken when the page was first
//! written in the current interval) and applies only the changed bytes to the
//! shared image. Overlapping writes by different threads to the *same byte*
//! are resolved last-writer-wins, exactly as in the paper (and in TreadMarks
//! / Munin / Dthreads before it). Writes by different threads to different
//! bytes of the same page merge cleanly, which is what makes the
//! threads-as-processes design immune to false sharing.

use serde::{Deserialize, Serialize};

use crate::shared::SharedPage;

/// A contiguous run of changed bytes within one page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: usize,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// The set of changed byte runs of one dirty page.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageDiff {
    /// Changed runs, in increasing offset order, non-adjacent.
    pub runs: Vec<DiffRun>,
}

impl PageDiff {
    /// Returns `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }
}

/// Computes the byte-level diff between a twin (the page as it was when the
/// thread first copied it) and the thread's working copy.
///
/// # Panics
///
/// Panics if the two buffers have different lengths.
pub fn diff_page(twin: &[u8], working: &[u8]) -> PageDiff {
    assert_eq!(twin.len(), working.len(), "twin/working size mismatch");
    let mut runs = Vec::new();
    let mut i = 0;
    while i < twin.len() {
        if twin[i] == working[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < twin.len() && twin[i] != working[i] {
            i += 1;
        }
        runs.push(DiffRun {
            offset: start,
            bytes: working[start..i].to_vec(),
        });
    }
    PageDiff { runs }
}

/// Applies a diff to the shared page (last-writer-wins for overlapping
/// bytes — whichever thread commits later overwrites).
pub fn apply_diff(shared: &SharedPage, diff: &PageDiff) {
    for run in &diff.runs {
        shared.write(run.offset, &run.bytes);
    }
}

/// Statistics of a single commit operation, consumed by the runtime's
/// overhead accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitOutcome {
    /// Dirty pages examined.
    pub pages_examined: usize,
    /// Pages that actually contained changes.
    pub pages_changed: usize,
    /// Total changed bytes written to the shared image.
    pub bytes_written: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_pages_produce_empty_diff() {
        let a = vec![7u8; 128];
        let d = diff_page(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.changed_bytes(), 0);
    }

    #[test]
    fn diff_finds_contiguous_runs() {
        let twin = vec![0u8; 16];
        let mut work = twin.clone();
        work[2] = 1;
        work[3] = 2;
        work[10] = 3;
        let d = diff_page(&twin, &work);
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].offset, 2);
        assert_eq!(d.runs[0].bytes, vec![1, 2]);
        assert_eq!(d.runs[1].offset, 10);
        assert_eq!(d.changed_bytes(), 3);
    }

    #[test]
    fn apply_diff_writes_only_changed_bytes() {
        let shared = SharedPage::zeroed(16);
        shared.write(0, &[9u8; 16]);
        let twin = vec![0u8; 16];
        let mut work = twin.clone();
        work[5] = 42;
        let d = diff_page(&twin, &work);
        apply_diff(&shared, &d);
        // Only byte 5 is overwritten; the 9s elsewhere survive.
        assert_eq!(shared.read_byte(5), 42);
        assert_eq!(shared.read_byte(4), 9);
        assert_eq!(shared.read_byte(6), 9);
    }

    #[test]
    fn disjoint_commits_merge_without_interference() {
        // Two "threads" modify different halves of the same page: both
        // changes must survive (false-sharing-free commit).
        let shared = SharedPage::zeroed(32);
        let base = shared.snapshot();

        let mut work_a = base.clone();
        work_a[0] = 1;
        let mut work_b = base.clone();
        work_b[31] = 2;

        apply_diff(&shared, &diff_page(&base, &work_a));
        apply_diff(&shared, &diff_page(&base, &work_b));

        assert_eq!(shared.read_byte(0), 1);
        assert_eq!(shared.read_byte(31), 2);
    }

    #[test]
    fn overlapping_commits_are_last_writer_wins() {
        let shared = SharedPage::zeroed(8);
        let base = shared.snapshot();
        let mut work_a = base.clone();
        work_a[3] = 10;
        let mut work_b = base.clone();
        work_b[3] = 20;
        apply_diff(&shared, &diff_page(&base, &work_a));
        apply_diff(&shared, &diff_page(&base, &work_b));
        assert_eq!(shared.read_byte(3), 20);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        diff_page(&[0u8; 4], &[0u8; 8]);
    }

    proptest! {
        /// Applying the diff of (twin, working) to a page holding the twin
        /// contents always reproduces the working copy exactly.
        #[test]
        fn prop_diff_apply_roundtrip(twin in proptest::collection::vec(any::<u8>(), 64),
                                     working in proptest::collection::vec(any::<u8>(), 64)) {
            let shared = SharedPage::zeroed(64);
            shared.write(0, &twin);
            let d = diff_page(&twin, &working);
            apply_diff(&shared, &d);
            prop_assert_eq!(shared.snapshot(), working);
        }

        /// The number of changed bytes reported by the diff equals the true
        /// Hamming distance between twin and working copy.
        #[test]
        fn prop_changed_bytes_is_hamming_distance(
            twin in proptest::collection::vec(any::<u8>(), 64),
            working in proptest::collection::vec(any::<u8>(), 64),
        ) {
            let d = diff_page(&twin, &working);
            let hamming = twin.iter().zip(&working).filter(|(a, b)| a != b).count();
            prop_assert_eq!(d.changed_bytes(), hamming);
        }

        /// Runs never touch bytes that did not change.
        #[test]
        fn prop_runs_only_cover_changes(
            twin in proptest::collection::vec(any::<u8>(), 32),
            working in proptest::collection::vec(any::<u8>(), 32),
        ) {
            let d = diff_page(&twin, &working);
            for run in &d.runs {
                for (i, &b) in run.bytes.iter().enumerate() {
                    prop_assert_eq!(b, working[run.offset + i]);
                    prop_assert_ne!(b, twin[run.offset + i]);
                }
            }
        }
    }
}
