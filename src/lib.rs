//! # inspector
//!
//! Facade crate for the INSPECTOR reproduction: data provenance for
//! shared-memory multithreaded programs using a software-simulated Intel
//! Processor Trace (PT) substrate.
//!
//! This crate simply re-exports the workspace's public surface so that
//! downstream users (and the examples under `examples/`) only need one
//! dependency:
//!
//! * [`runtime`] — the threading library and session API ([`InspectorSession`],
//!   [`ThreadCtx`], the `sync` primitives);
//! * [`core`] — the Concurrent Provenance Graph, queries, taint tracking and
//!   snapshots;
//! * [`mem`] — the paged shared-memory substrate;
//! * [`pt`] — the PT packet encoder/decoder and AUX buffers;
//! * [`perf`] — the perf-style trace session, cgroup filter and LZ
//!   compressor;
//! * [`workloads`] — the twelve PARSEC/Phoenix benchmark applications.
//!
//! ## Quickstart
//!
//! ```
//! use inspector::prelude::*;
//! use std::sync::Arc;
//!
//! let session = InspectorSession::new(SessionConfig::inspector());
//! let counter = session.map_region("counter", 8).base();
//! let lock = Arc::new(InspMutex::new());
//!
//! let report = session.run(move |ctx| {
//!     let mut workers = Vec::new();
//!     for _ in 0..4 {
//!         let lock = Arc::clone(&lock);
//!         workers.push(ctx.spawn(move |ctx| {
//!             lock.lock(ctx);
//!             let v = ctx.read_u64(counter);
//!             ctx.write_u64(counter, v + 1);
//!             lock.unlock(ctx);
//!         }));
//!     }
//!     for w in workers {
//!         ctx.join(w);
//!     }
//! });
//!
//! assert_eq!(report.cpg.stats().threads, 5);
//! let query = ProvenanceQuery::new(&report.cpg);
//! assert!(!query.writers_of(PageId::new(counter.raw() / 4096)).is_empty());
//! ```

pub use inspector_core as core;
pub use inspector_mem as mem;
pub use inspector_perf as perf;
pub use inspector_pt as pt;
pub use inspector_runtime as runtime;
pub use inspector_workloads as workloads;

/// Commonly used items, re-exported for `use inspector::prelude::*`.
pub mod prelude {
    pub use inspector_core::graph::{Cpg, EdgeKind};
    pub use inspector_core::ids::{PageId, SubId, SyncObjectId, ThreadId};
    pub use inspector_core::query::{EdgeFilter, ProvenanceQuery};
    pub use inspector_core::recover::{recover_session, Recovery, RecoveryReport};
    pub use inspector_core::spill::SpillDurability;
    pub use inspector_core::taint::{TaintLabel, TaintTracker};
    pub use inspector_mem::addr::VirtAddr;
    pub use inspector_runtime::sync::{
        InspBarrier, InspCondvar, InspMutex, InspRwLock, InspSemaphore,
    };
    pub use inspector_runtime::{
        ExecutionMode, FaultPlan, InspectorSession, JoinHandle, RunReport, SessionConfig,
        SessionError, ThreadCtx, WorkerFailure,
    };
    pub use inspector_workloads::{all_workloads, workload_by_name, InputSize, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let session = InspectorSession::new(SessionConfig::inspector());
        let report = session.run(|ctx| ctx.branch(true));
        assert_eq!(report.mode, ExecutionMode::Inspector);
        assert_eq!(all_workloads().len(), 12);
    }
}
