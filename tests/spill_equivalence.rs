//! Property suite for the spill stage: for any schedule, delivery
//! interleaving, pool width, shard count and spill threshold (including the
//! pathological threshold 1), the spilled-then-reloaded graph must be node-
//! and edge-identical to the batch `CpgBuilder::build()` oracle, the
//! seal-time safety nets must stay idle on complete runs
//! (`sync_resolved_at_seal == 0`, `data_resolved_at_seal == 0`), and a
//! session run with spilling on must bound its peak resident window while
//! reporting the work (`RunStats::{spilled_subs, spill_bytes,
//! peak_resident_subs}`).

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::core::event::{AccessKind, SyncKind};
use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::ids::{PageId, SyncObjectId, ThreadId};
use inspector::core::recorder::{SyncClockRegistry, ThreadRecorder};
use inspector::core::sharded::ShardedCpgBuilder;
use inspector::core::spill::SpillSettings;
use inspector::core::subcomputation::SubComputation;
use inspector::core::testing::announce_all;
use inspector::prelude::*;
use proptest::prelude::*;

/// splitmix64, so each proptest case expands one seed into a full random
/// schedule deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Records a random multithreaded execution: a random *global* schedule of
/// reads, writes and release/acquire operations over small page and lock
/// pools, so the threads' vector clocks entangle in random ways (the same
/// shape as the `incremental_data_edges` suite).
fn random_sequences(seed: u64) -> Vec<Vec<SubComputation>> {
    let mut rng = Rng(seed);
    let threads = 2 + rng.below(3) as u32; // 2..=4
    let pages = 1 + rng.below(8); // 1..=8
    let locks = 1 + rng.below(3); // 1..=3
    let ops = 30 + rng.below(60); // 30..=89 operations, globally scheduled

    let registry = SyncClockRegistry::shared();
    let mut recs: Vec<ThreadRecorder> = (0..threads)
        .map(|t| ThreadRecorder::new(ThreadId::new(t), Arc::clone(&registry)))
        .collect();
    for _ in 0..ops {
        let t = rng.below(threads as u64) as usize;
        match rng.below(5) {
            0 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Read),
            1 | 2 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Write),
            3 => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Release);
            }
            _ => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Acquire);
            }
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

/// Streams the sequences in a random delivery interleaving that is FIFO per
/// thread (repeatedly picking a random non-empty thread cursor).
fn stream_random_interleaving(
    builder: &ShardedCpgBuilder,
    sequences: Vec<Vec<SubComputation>>,
    seed: u64,
) {
    announce_all(builder, &sequences);
    let mut rng = Rng(seed ^ 0xDEAD_BEEF);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut remaining: usize = cursors.iter().map(|c| c.len()).sum();
    while remaining > 0 {
        let pick = rng.below(cursors.len() as u64) as usize;
        if let Some(sub) = cursors[pick].next() {
            builder.ingest(sub);
            remaining -= 1;
        }
    }
}

fn batch_build(sequences: &[Vec<SubComputation>]) -> Cpg {
    let mut builder = CpgBuilder::new();
    for seq in sequences {
        builder.add_thread(seq.clone());
    }
    builder.build()
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

fn node_fingerprint(cpg: &Cpg) -> Vec<String> {
    cpg.nodes().map(|n| format!("{n:?}")).collect()
}

/// A test-unique spill directory with tiny segments, so segment rolling and
/// multi-segment fault-in are exercised constantly.
fn spill_settings(threshold: usize) -> SpillSettings {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "inspector-spill-eq-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    SpillSettings {
        segment_bytes: 256,
        ..SpillSettings::new(threshold, dir)
    }
}

proptest! {
    #[test]
    fn spilled_build_matches_batch_over_random_everything(seed in any::<u64>()) {
        // Random schedule × random FIFO interleaving × random shard count ×
        // random spill threshold (biased to include 1, the most aggressive
        // cut): the reloaded graph must be identical to the batch oracle.
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);

        let mut rng = Rng(seed ^ 0x5EED);
        let shards = 1 + rng.below(8) as usize;
        let threshold = [1, 1, 2, 4, 16][rng.below(5) as usize];
        let streaming =
            ShardedCpgBuilder::with_shards_and_spill(shards, Some(spill_settings(threshold)));
        stream_random_interleaving(&streaming, sequences, seed);
        let sealed = streaming.seal();

        prop_assert_eq!(sealed.node_count(), reference.node_count());
        prop_assert_eq!(node_fingerprint(&sealed), node_fingerprint(&reference));
        prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
        prop_assert!(sealed.validate().is_ok());

        // Complete delivery: the seal-time safety nets stayed idle even
        // though nodes kept leaving memory mid-build.
        let stats = streaming.last_sealed_stats().expect("sealed once");
        prop_assert_eq!(stats.sync_resolved_at_seal, 0);
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
        // Threshold 1 always finds a consistent prefix on these schedules
        // (every thread's prologue sub has a frontier-covered clock).
        if threshold == 1 {
            prop_assert!(stats.spilled_subs > 0, "threshold 1 must spill: {:?}", stats);
            prop_assert!(stats.spill_bytes > 0);
            prop_assert!(stats.peak_resident_subs >= 1);
        }
    }

    #[test]
    fn concurrent_producer_pools_spill_and_still_match_batch(seed in any::<u64>()) {
        // The runtime's lane routing (worker w owns threads with index %
        // pool == w) driving a spilling builder from real OS threads: the
        // graph must stay identical to the oracle for every pool width.
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);
        for pool in [1usize, 2, 4] {
            let streaming =
                ShardedCpgBuilder::with_shards_and_spill(4, Some(spill_settings(1)));
            announce_all(&streaming, &sequences);
            std::thread::scope(|scope| {
                for worker in 0..pool {
                    let streaming = &streaming;
                    let lanes: Vec<Vec<SubComputation>> = sequences
                        .iter()
                        .enumerate()
                        .filter(|(t, _)| t % pool == worker)
                        .map(|(_, seq)| seq.clone())
                        .collect();
                    scope.spawn(move || {
                        let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
                            lanes.into_iter().map(|s| s.into_iter()).collect();
                        let mut progressed = true;
                        while progressed {
                            progressed = false;
                            for cursor in &mut cursors {
                                if let Some(sub) = cursor.next() {
                                    streaming.ingest(sub);
                                    progressed = true;
                                }
                            }
                        }
                    });
                }
            });
            let sealed = streaming.seal();
            prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
            let stats = streaming.last_sealed_stats().expect("sealed");
            prop_assert_eq!(stats.sync_resolved_at_seal, 0);
            prop_assert_eq!(stats.data_resolved_at_seal, 0);
            prop_assert!(stats.spilled_subs > 0);
        }
    }

    #[test]
    fn spilling_builder_reuse_is_clean(seed in any::<u64>()) {
        // Sealing must fully reset the spill stores alongside the indexes
        // and counters: a second build on the same builder produces
        // identical edges and fresh counters.
        let sequences = random_sequences(seed);
        let streaming =
            ShardedCpgBuilder::with_shards_and_spill(3, Some(spill_settings(2)));
        stream_random_interleaving(&streaming, sequences.clone(), seed);
        let first = streaming.seal();
        stream_random_interleaving(&streaming, sequences, seed.wrapping_add(1));
        let second = streaming.seal();

        prop_assert_eq!(edge_fingerprint(&first), edge_fingerprint(&second));
        let stats = streaming.last_sealed_stats().expect("sealed twice");
        prop_assert_eq!(stats.ingested as usize, second.node_count());
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
    }
}

// ---------------------------------------------------------------------------
// Session-level: the env-tunable pipeline with spilling on
// ---------------------------------------------------------------------------

/// Rebuilds a batch CPG from the per-thread sequences stored in a streamed
/// graph's node set.
fn rebatch(cpg: &Cpg) -> Cpg {
    let mut builder = CpgBuilder::new();
    for thread in cpg.threads() {
        let seq: Vec<SubComputation> = cpg
            .thread_sequence(thread)
            .into_iter()
            .map(|id| cpg.node(id).expect("listed node exists").clone())
            .collect();
        builder.add_thread(seq);
    }
    builder.build()
}

#[test]
fn session_with_spill_threshold_one_bounds_the_window() {
    // Base config honours the CI knob matrix (`INSPECTOR_INGEST_THREADS`,
    // `INSPECTOR_DECODE_ONLINE`, ...); the spill threshold is then forced
    // to 1 so this test always exercises the most aggressive cut.
    let config = SessionConfig::inspector()
        .apply_env()
        .with_spill_threshold(1);
    let session = InspectorSession::new(config);
    let counter = session.map_region("counter", 8).base();
    let lock = Arc::new(InspMutex::new());
    let report = session.run(move |ctx| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                for _ in 0..12u64 {
                    lock.lock(ctx);
                    let v = ctx.read_u64(counter);
                    ctx.write_u64(counter, v + 1);
                    lock.unlock(ctx);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }
    });

    // Spilling happened and is reported.
    assert!(report.stats.spilled_subs > 0, "{:?}", report.stats);
    assert!(report.stats.spill_bytes > 0);
    // Peak resident memory is the active window, not the trace length.
    assert!(
        report.stats.peak_resident_subs < report.stats.recorder.subcomputations,
        "peak resident {} vs {} recorded",
        report.stats.peak_resident_subs,
        report.stats.recorder.subcomputations
    );
    // Equivalence is preserved: the sealed graph matches its own batch
    // rebuild exactly.
    let reference = rebatch(&report.cpg);
    assert_eq!(report.cpg.node_count(), reference.node_count());
    assert_eq!(edge_fingerprint(&report.cpg), edge_fingerprint(&reference));
    assert!(report.cpg.validate().is_ok());
    // Complete run: nothing was left for the seal.
    let stats = session.ingest_stats();
    assert_eq!(stats.sync_resolved_at_seal, 0, "{stats:?}");
    assert_eq!(stats.data_resolved_at_seal, 0, "{stats:?}");
}

#[test]
fn spill_env_knob_flows_into_the_session() {
    // The harness contract: `INSPECTOR_SPILL_THRESHOLD` reaches the
    // builder. Exercised through the injected-lookup path so the test does
    // not mutate the process environment.
    let config = SessionConfig::inspector()
        .apply_env_with(|name| (name == "INSPECTOR_SPILL_THRESHOLD").then(|| "1".into()));
    assert_eq!(config.spill_threshold, 1);
    let session = InspectorSession::new(config);
    let cell = session.map_region("cell", 8).base();
    let report = session.run(move |ctx| {
        for i in 0..40u64 {
            let obj = inspector::runtime::ctx::fresh_sync_id();
            ctx.write_u64(cell, i);
            ctx.sync_boundary(obj, inspector::core::event::SyncKind::Release);
        }
    });
    assert!(report.stats.spilled_subs > 0, "{:?}", report.stats);
    assert_eq!(
        report.cpg.node_count() as u64,
        session.ingest_stats().ingested
    );
}
