//! Crash-consistency property suite: for any schedule × spill threshold ×
//! injected crash point, offline recovery of the surviving spill directory
//!
//! 1. **terminates** and never panics on damaged input,
//! 2. rebuilds a CPG **node- and edge-identical to the batch oracle** over
//!    the recovered consistent prefix (which is a true prefix of the
//!    sealed graph — the in-process session lost nothing, so the sealed
//!    graph doubles as ground truth),
//! 3. **accounts every byte**: `total = headers + recovered + lost`, with
//!    `total` equal to what is actually on disk,
//!
//! and recovering a cleanly sealed, retained directory reproduces the
//! sealed graph *exactly*. Torn tails (truncation at a random offset) and
//! bit rot (a flipped byte, caught by the per-record CRC) degrade the
//! recovered graph to a smaller consistent prefix, never to an error.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::subcomputation::SubComputation;
use inspector::prelude::*;
use proptest::prelude::*;

/// splitmix64, so each proptest case expands one seed into a full random
/// schedule + crash plan deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A test-unique spill directory so concurrent cases never collide.
fn spill_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "inspector-crash-rec-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

/// The batch oracle over a frontier-truncated slice of a sealed graph:
/// each thread's sequence cut at the recovered consistent frontier, re-fed
/// to the offline builder. Whatever recovery reconstructed from disk must
/// be node- and edge-identical to this.
fn oracle_prefix(sealed: &Cpg, frontier: &BTreeMap<u32, u64>) -> Cpg {
    let mut builder = CpgBuilder::new();
    for thread in sealed.threads() {
        let keep = *frontier.get(&(thread.index() as u32)).unwrap_or(&0) as usize;
        if keep == 0 {
            continue;
        }
        let seq: Vec<SubComputation> = sealed
            .thread_sequence(thread)
            .into_iter()
            .take(keep)
            .map(|id| sealed.node(id).expect("listed node exists").clone())
            .collect();
        builder.add_thread(seq);
    }
    builder.build()
}

/// Sum of the `*.spill` segment files in a directory — what "on disk"
/// means for the byte-accounting equation.
fn disk_spill_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".spill"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

fn spill_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("spill dir readable")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".spill"))
        .map(|e| e.path())
        .collect();
    files.sort();
    files
}

/// Runs a mutex-contended multithreaded workload sized by the rng and
/// returns the report; every lock/unlock closes a sub-computation, so the
/// shards fill and spill.
fn run_shaped(session: &InspectorSession, rng: &mut Rng) -> RunReport {
    let workers = 1 + rng.below(3);
    let iterations = 5 + rng.below(16);
    let region = session.map_region("counter", 8);
    let base = region.base();
    let lock = Arc::new(InspMutex::new());
    session.run(move |ctx| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                for i in 0..iterations {
                    ctx.branch((i + w) % 2 == 0);
                    lock.lock(ctx);
                    let v = ctx.read_u64(base);
                    ctx.write_u64(base, v + 1);
                    lock.unlock(ctx);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }
    })
}

/// The full recovery contract against a sealed ground truth: consistent
/// frontier within the durable one, graph ≡ oracle prefix, every byte
/// accounted, and `degraded()` exactly when something was left behind.
fn assert_recovery_contract(dir: &Path, sealed: &Cpg) -> Recovery {
    let on_disk = disk_spill_bytes(dir);
    let recovery = inspector::core::recover::recover_session(dir).expect("recovery I/O");
    let r = &recovery.report;

    // Byte accounting is exact, and "total" means the actual disk image.
    assert_eq!(r.total_bytes, on_disk, "{r:?}");
    assert_eq!(
        r.total_bytes,
        r.header_bytes + r.recovered_bytes + r.lost_bytes,
        "{r:?}"
    );

    // The consistent cut never exceeds what the manifest promised durable.
    for (thread, &kept) in &r.consistent_frontier {
        let durable = r.durable_frontier.get(thread).copied().unwrap_or(0);
        assert!(kept <= durable, "thread {thread}: {kept} > {durable}");
    }

    // The recovered per-thread sequences are literal prefixes of the
    // sealed graph's, and the edges re-derived over them equal the batch
    // oracle over the same prefix.
    for thread in recovery.cpg.threads() {
        let recovered_seq = recovery.cpg.thread_sequence(thread);
        let sealed_seq = sealed.thread_sequence(thread);
        assert!(recovered_seq.len() <= sealed_seq.len());
        assert_eq!(recovered_seq[..], sealed_seq[..recovered_seq.len()]);
    }
    let reference = oracle_prefix(sealed, &r.consistent_frontier);
    assert_eq!(recovery.cpg.node_count(), reference.node_count());
    assert_eq!(
        edge_fingerprint(&recovery.cpg),
        edge_fingerprint(&reference)
    );
    assert_eq!(recovery.cpg.node_count() as u64, r.recovered_nodes);
    recovery
}

proptest! {
    /// Tentpole property: schedule × threshold × crash point. The armed
    /// crash tears a record mid-append and freezes the manifest; the
    /// session itself survives (in-memory fallback, `spill_fallbacks`) so
    /// its sealed graph is the ground truth the recovered prefix is
    /// checked against. When the crash point lies past the run, the
    /// retained directory must instead recover *exactly*.
    #[test]
    fn any_crash_point_recovers_the_maximal_consistent_prefix(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let threshold = 1 + rng.below(6) as usize;
        let crash_at = 1 + rng.below(120);
        let durability = match rng.below(3) {
            0 => SpillDurability::None,
            1 => SpillDurability::Flush,
            _ => SpillDurability::Fsync,
        };
        let config = SessionConfig::inspector()
            .with_spill_threshold(threshold)
            .with_spill_dir(spill_dir())
            .with_spill_durability(durability)
            .with_spill_retain(true) // keep the image even if the crash never fires
            .with_fault_plan(FaultPlan { crash_at_spill: crash_at, ..FaultPlan::default() });
        let session = InspectorSession::new(config);
        let report = run_shaped(&session, &mut rng);
        let dir = session.spill_directory().expect("spilling session has a directory");
        prop_assert!(dir.is_dir(), "artifacts must outlive the seal");

        let crashed = report.stats.spill_fallbacks > 0;
        prop_assert_eq!(report.stats.degraded, crashed, "{:?}", report.stats);
        let recovery = assert_recovery_contract(&dir, &report.cpg);
        if crashed {
            prop_assert!(!recovery.report.manifest_clean);
            prop_assert!(recovery.report.degraded(), "{:?}", recovery.report);
        } else {
            // Crash point past the run: a clean retained image must
            // reproduce the sealed graph exactly, with zero loss.
            prop_assert!(recovery.report.manifest_clean);
            prop_assert!(!recovery.report.degraded(), "{:?}", recovery.report);
            prop_assert_eq!(recovery.cpg.node_count(), report.cpg.node_count());
            prop_assert_eq!(edge_fingerprint(&recovery.cpg), edge_fingerprint(&report.cpg));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite property: truncate a cleanly sealed image at a random
    /// byte offset — a torn tail. Recovery must degrade to a (possibly
    /// empty) consistent prefix with the chopped bytes accounted, never
    /// error or over-recover.
    #[test]
    fn truncation_at_any_offset_recovers_an_accounted_prefix(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ 0x7A93);
        let config = SessionConfig::inspector()
            .with_spill_threshold(1 + rng.below(4) as usize)
            .with_spill_dir(spill_dir())
            .with_spill_retain(true);
        let session = InspectorSession::new(config);
        let report = run_shaped(&session, &mut rng);
        let dir = session.spill_directory().expect("spill directory");

        let files = spill_files(&dir);
        prop_assert!(!files.is_empty(), "retained seal leaves segments behind");
        let victim = &files[rng.below(files.len() as u64) as usize];
        let len = std::fs::metadata(victim).unwrap().len();
        let cut = rng.below(len + 1);
        let mut bytes = std::fs::read(victim).unwrap();
        bytes.truncate(cut as usize);
        std::fs::write(victim, &bytes).unwrap();

        let recovery = assert_recovery_contract(&dir, &report.cpg);
        if cut < len {
            // Something was chopped: the manifest names bytes that are no
            // longer on disk, so the report must say so.
            let r = &recovery.report;
            prop_assert!(r.missing_bytes > 0 || r.lost_bytes > 0, "{:?}", r);
            prop_assert!(r.degraded(), "{:?}", r);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite property: flip one byte anywhere in a cleanly sealed
    /// image — bit rot. The segment header check or the per-record CRC
    /// must catch it; recovery degrades to a consistent prefix with the
    /// poisoned bytes accounted.
    #[test]
    fn a_flipped_byte_is_caught_and_accounted(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ 0xC4C1);
        let config = SessionConfig::inspector()
            .with_spill_threshold(1 + rng.below(4) as usize)
            .with_spill_dir(spill_dir())
            .with_spill_retain(true);
        let session = InspectorSession::new(config);
        let report = run_shaped(&session, &mut rng);
        let dir = session.spill_directory().expect("spill directory");

        let files = spill_files(&dir);
        prop_assert!(!files.is_empty());
        let victim = &files[rng.below(files.len() as u64) as usize];
        let mut bytes = std::fs::read(victim).unwrap();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] ^= 0xFF;
        std::fs::write(victim, &bytes).unwrap();

        let recovery = assert_recovery_contract(&dir, &report.cpg);
        let r = &recovery.report;
        prop_assert!(r.degraded(), "a flipped byte must be observable: {:?}", r);
        prop_assert!(
            r.bad_headers + r.crc_failures + r.torn_records + r.decode_failures > 0,
            "{:?}",
            r
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A cleanly sealed, retained directory reproduces the sealed graph
/// exactly — nodes, edges, zero loss, `degraded()` false.
#[test]
fn clean_retained_directory_recovers_the_sealed_graph_exactly() {
    let config = SessionConfig::inspector()
        .with_spill_threshold(2)
        .with_spill_dir(spill_dir())
        .with_spill_retain(true);
    let session = InspectorSession::new(config);
    let report = run_shaped(&session, &mut Rng(42));
    assert!(!report.stats.degraded, "{:?}", report.stats);
    let dir = session.spill_directory().expect("spill directory");

    let recovery = assert_recovery_contract(&dir, &report.cpg);
    let r = &recovery.report;
    assert!(r.manifest_found && r.manifest_clean, "{r:?}");
    assert!(!r.degraded(), "{r:?}");
    assert_eq!(r.lost_bytes, 0);
    assert_eq!(r.excluded_nodes, 0);
    assert_eq!(recovery.cpg.node_count(), report.cpg.node_count());
    assert_eq!(
        edge_fingerprint(&recovery.cpg),
        edge_fingerprint(&report.cpg)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A stale `MANIFEST.tmp` left by an interrupted atomic rename is ignored:
/// recovery reads the last published manifest and still reproduces the
/// sealed graph exactly.
#[test]
fn stale_tmp_manifest_does_not_perturb_recovery() {
    let config = SessionConfig::inspector()
        .with_spill_threshold(2)
        .with_spill_dir(spill_dir())
        .with_spill_retain(true);
    let session = InspectorSession::new(config);
    let report = run_shaped(&session, &mut Rng(7));
    let dir = session.spill_directory().expect("spill directory");
    std::fs::write(dir.join("MANIFEST.tmp"), b"garbage from a dying writer").unwrap();

    let recovery = assert_recovery_contract(&dir, &report.cpg);
    assert!(!recovery.report.degraded(), "{:?}", recovery.report);
    assert_eq!(recovery.cpg.node_count(), report.cpg.node_count());
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite contract: a clean, non-retained seal removes its
/// session-unique spill directory; a crashed run keeps it — with the
/// manifest — for forensics.
#[test]
fn clean_seal_removes_the_directory_and_a_crash_keeps_it() {
    // Clean run, no retain: the directory is gone after the seal.
    let clean = InspectorSession::new(
        SessionConfig::inspector()
            .with_spill_threshold(1)
            .with_spill_dir(spill_dir()),
    );
    let report = run_shaped(&clean, &mut Rng(3));
    assert!(report.stats.spilled_subs > 0, "{:?}", report.stats);
    let dir = clean.spill_directory().expect("spill directory");
    assert!(!dir.exists(), "clean seal must not leak {}", dir.display());

    // Crashed run: directory, segments, and manifest survive.
    let crashed = InspectorSession::new(
        SessionConfig::inspector()
            .with_spill_threshold(1)
            .with_spill_dir(spill_dir())
            .with_fault_plan(FaultPlan {
                crash_at_spill: 3,
                ..FaultPlan::default()
            }),
    );
    let report = run_shaped(&crashed, &mut Rng(4));
    assert!(report.stats.spill_fallbacks > 0, "{:?}", report.stats);
    assert!(report.stats.degraded);
    let dir = crashed.spill_directory().expect("spill directory");
    assert!(dir.is_dir(), "forensics material must never be deleted");
    assert!(dir.join("MANIFEST").is_file(), "manifest kept for recovery");
    let recovery = inspector::core::recover::recover_session(&dir).expect("recovery I/O");
    assert!(recovery.report.manifest_found);
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash knob reaches the session through the same env path as every
/// other fault trigger.
#[test]
fn crash_env_knob_reaches_the_session() {
    let config = SessionConfig::inspector().apply_env_with(|name| match name {
        "INSPECTOR_FAULT_CRASH_AT_SPILL" => Some("2".into()),
        "INSPECTOR_SPILL_THRESHOLD" => Some("1".into()),
        "INSPECTOR_SPILL_DURABILITY" => Some("flush".into()),
        _ => None,
    });
    assert_eq!(config.fault_plan.crash_at_spill, 2);
    assert_eq!(config.spill_durability, SpillDurability::Flush);
    let config = config.with_spill_dir(spill_dir());
    let session = InspectorSession::new(config);
    let report = run_shaped(&session, &mut Rng(11));
    assert!(report.stats.spill_fallbacks > 0, "{:?}", report.stats);
    assert!(report.stats.degraded);
    let dir = session.spill_directory().expect("spill directory");
    let recovery = inspector::core::recover::recover_session(&dir).expect("recovery I/O");
    assert!(recovery.report.degraded());
    std::fs::remove_dir_all(&dir).ok();
}
