//! Integration tests for the live-snapshot facility (§VI) and the DIFT /
//! NUMA case studies (§VIII) across crate boundaries.

use std::sync::Arc;

use inspector::prelude::*;

#[test]
fn live_snapshots_are_consistent_and_bounded() {
    let session = InspectorSession::new(SessionConfig::inspector().with_live_snapshots(2));
    let data = session.map_region("data", 4096).base();
    let monitor = session.live_monitor();
    let monitor_for_run = monitor.clone();
    let lock = Arc::new(InspMutex::new());

    let _report = session.run(move |ctx| {
        for i in 0..32u64 {
            lock.lock(ctx);
            let v = ctx.read_u64(data);
            ctx.write_u64(data, v + i);
            lock.unlock(ctx);
            if i % 8 == 7 {
                monitor_for_run.take_snapshot();
            }
        }
    });

    // Four snapshots into two slots: the ring stays bounded and every stored
    // snapshot satisfies the consistency invariants.
    assert_eq!(monitor.stored(), 2);
    while let Some(snapshot) = monitor.consume_oldest() {
        snapshot.cpg.validate().expect("consistent snapshot");
    }
}

#[test]
fn snapshot_ring_overwrites_but_latest_is_usable() {
    let session = InspectorSession::new(SessionConfig::inspector().with_live_snapshots(2));
    let data = session.map_region("data", 8).base();
    let monitor = session.live_monitor();
    let monitor_for_run = monitor.clone();

    let _report = session.run(move |ctx| {
        for i in 0..50u64 {
            let obj = inspector::runtime::ctx::fresh_sync_id();
            ctx.write_u64(data, i);
            ctx.sync_boundary(obj, inspector::core::event::SyncKind::Release);
            if i % 10 == 9 {
                monitor_for_run.take_snapshot();
            }
        }
    });

    // Five snapshots were taken into a two-slot ring: three were overwritten.
    assert_eq!(monitor.stored(), 2);
    let latest = monitor.latest().expect("latest snapshot");
    latest.cpg.validate().expect("snapshot CPG is valid");
    assert!(latest.cpg.node_count() > 0);
    // Consuming frees slots.
    assert!(monitor.consume_oldest().is_some());
    assert!(monitor.consume_oldest().is_some());
    assert!(monitor.consume_oldest().is_none());
}

#[test]
fn live_snapshots_fault_spilled_nodes_back_in() {
    // Spill threshold 1: by the time the snapshot is taken, most of the
    // recorded history has left memory. The snapshot must still cover it —
    // spilled nodes are faulted back in from the segment files
    // transparently — and stay a consistent, valid cut.
    let session = InspectorSession::new(
        SessionConfig::inspector()
            .with_live_snapshots(2)
            .with_spill_threshold(1),
    );
    let data = session.map_region("data", 4096).base();
    let monitor = session.live_monitor();
    let monitor_for_run = monitor.clone();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        for i in 0..32u64 {
            lock.lock(ctx);
            let v = ctx.read_u64(data);
            ctx.write_u64(data, v + i);
            lock.unlock(ctx);
            if i == 31 {
                monitor_for_run.take_snapshot();
            }
        }
    });

    assert!(report.stats.spilled_subs > 0, "{:?}", report.stats);
    let snapshot = monitor.latest().expect("snapshot taken");
    snapshot.cpg.validate().expect("consistent snapshot");
    // The snapshot was cut after the last write: it must reach deep into
    // the spilled history, far beyond the resident window.
    assert!(
        snapshot.cpg.node_count() as u64 > report.stats.peak_resident_subs,
        "snapshot ({} nodes) should cover spilled history (window was {})",
        snapshot.cpg.node_count(),
        report.stats.peak_resident_subs
    );
    // And per-thread sequences in the snapshot start at α = 0 — the faulted
    // prefix really is there, not just the live suffix.
    for thread in snapshot.cpg.threads() {
        let seq = snapshot.cpg.thread_sequence(thread);
        assert_eq!(seq.first().map(|id| id.alpha), Some(0), "thread {thread}");
    }
}

#[test]
fn taint_propagates_through_a_spill_active_snapshot() {
    // Take a mid-run snapshot while spilling is active, then run the taint
    // policy over the snapshot's CPG: the flow from the tainted input page
    // to the derived page crosses sub-computations that were spilled and
    // faulted back in.
    let session = InspectorSession::new(
        SessionConfig::inspector()
            .with_live_snapshots(2)
            .with_spill_threshold(1),
    );
    let secret = session.map_input("secret.bin", &[5u8; 4096]);
    let secret_base = secret.base();
    let secret_pages = secret.page_count() as u64;
    let derived = session.map_region("derived", 8).base();
    let monitor = session.live_monitor();
    let monitor_for_run = monitor.clone();

    let report = session.run(move |ctx| {
        let mut acc = 0u64;
        for i in 0..64 {
            acc += ctx.read_u8(secret_base.add(i)) as u64;
        }
        ctx.write_u64(derived, acc);
        // Several boundaries so the read/write subs retire (and spill)
        // before the snapshot is cut.
        for _ in 0..8 {
            let obj = inspector::runtime::ctx::fresh_sync_id();
            ctx.sync_boundary(obj, inspector::core::event::SyncKind::Release);
        }
        monitor_for_run.take_snapshot();
    });
    assert!(report.stats.spilled_subs > 0, "{:?}", report.stats);

    let snapshot = monitor.latest().expect("snapshot taken");
    snapshot.cpg.validate().expect("consistent snapshot");
    let mut tracker = TaintTracker::new().with_control_flow(true);
    tracker.taint_page_range(
        PageId::new(secret_base.raw() / 4096),
        secret_pages,
        TaintLabel(3),
    );
    let taint = tracker.propagate(&snapshot.cpg);
    assert!(
        taint.page_is_tainted(PageId::new(derived.raw() / 4096)),
        "taint must flow through spilled-and-faulted nodes"
    );
}

#[test]
fn taint_from_mapped_input_reaches_derived_output_only() {
    let session = InspectorSession::new(SessionConfig::inspector());
    let secret = session.map_input("secret.bin", &[9u8; 4096]);
    let secret_base = secret.base();
    let derived = session.map_region("derived", 8).base();
    let unrelated = session.map_region("unrelated", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let lock2 = Arc::clone(&lock);
        let worker = ctx.spawn(move |ctx| {
            let mut acc = 0u64;
            for i in 0..64 {
                acc += ctx.read_u8(secret_base.add(i)) as u64;
            }
            lock2.lock(ctx);
            ctx.write_u64(derived, acc);
            lock2.unlock(ctx);
        });
        lock.lock(ctx);
        ctx.write_u64(unrelated, 1);
        lock.unlock(ctx);
        ctx.join(worker);
    });

    // The derived value crosses a lock acquisition in a register, so the
    // sound (conservative) policy that follows intra-thread control edges is
    // required to catch it.
    let mut tracker = TaintTracker::new().with_control_flow(true);
    tracker.taint_page_range(
        PageId::new(secret_base.raw() / 4096),
        secret.page_count() as u64,
        TaintLabel(7),
    );
    let taint = tracker.propagate(&report.cpg);
    assert!(taint.page_is_tainted(PageId::new(derived.raw() / 4096)));
    assert!(!taint.page_is_tainted(PageId::new(unrelated.raw() / 4096)));
    assert!(tracker
        .check_output(&report.cpg, &[PageId::new(derived.raw() / 4096)])
        .is_err());
    assert!(tracker
        .check_output(&report.cpg, &[PageId::new(unrelated.raw() / 4096)])
        .is_ok());
}

#[test]
fn page_summary_distinguishes_private_and_shared_pages() {
    let session = InspectorSession::new(SessionConfig::inspector());
    let private_a = session.map_region("private-a", 4096).base();
    let private_b = session.map_region("private-b", 4096).base();
    let shared = session.map_region("shared", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let l1 = Arc::clone(&lock);
        let l2 = Arc::clone(&lock);
        let a = ctx.spawn(move |ctx| {
            ctx.write_u64(private_a, 1);
            l1.lock(ctx);
            let v = ctx.read_u64(shared);
            ctx.write_u64(shared, v + 1);
            l1.unlock(ctx);
        });
        let b = ctx.spawn(move |ctx| {
            ctx.write_u64(private_b, 2);
            l2.lock(ctx);
            let v = ctx.read_u64(shared);
            ctx.write_u64(shared, v + 1);
            l2.unlock(ctx);
        });
        ctx.join(a);
        ctx.join(b);
    });

    let query = ProvenanceQuery::new(&report.cpg);
    let summary = query.page_summary();
    let shared_page = PageId::new(shared.raw() / 4096);
    let private_a_page = PageId::new(private_a.raw() / 4096);
    assert!(summary[&shared_page].is_shared());
    assert!(!summary[&private_a_page].is_shared());
    assert!(query.shared_pages().contains(&shared_page));
}

#[test]
fn backward_slice_of_workload_output_reaches_input_pages() {
    // Run word_count and check that the count table's provenance reaches the
    // mapped input file — the core promise of data provenance.
    let workload = workload_by_name("word_count").unwrap();
    let result = workload.execute(SessionConfig::inspector(), 2, InputSize::Tiny);
    let cpg = &result.report.cpg;
    let query = ProvenanceQuery::new(cpg);

    // Find a sub-computation that read an Input-kind page... the table is in
    // a Heap region; instead check that data edges connect worker threads to
    // the merge phase and that the backward slice from any final writer is
    // non-trivial.
    let writers: Vec<_> = cpg
        .edges_of_kind(EdgeKind::Data)
        .filter(|e| e.src.thread != e.dst.thread)
        .collect();
    assert!(!writers.is_empty());
    let target = writers[0].dst;
    let slice = query.backward_slice(target, EdgeFilter::ALL);
    assert!(slice.len() > 1);
}
