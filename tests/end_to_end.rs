//! End-to-end integration tests: full pipeline from application execution
//! through the threading library, memory tracking and PT tracing to the CPG
//! and its queries.

use std::sync::Arc;

use inspector::prelude::*;
use inspector::pt::decode::PacketDecoder;

/// The paper's Figure 1 program: two threads updating x and y under a lock.
fn run_figure1() -> (RunReport, u64, u64) {
    let session = InspectorSession::new(SessionConfig::inspector());
    let x = session.map_region("x", 8).base();
    let y = session.map_region("y", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let l1 = Arc::clone(&lock);
        let l2 = Arc::clone(&lock);
        let t1 = ctx.spawn(move |ctx| {
            l1.lock(ctx);
            let flag = ctx.read_u64(y) == 0;
            ctx.branch(flag);
            let ny = ctx.read_u64(y) + 1;
            ctx.write_u64(y, ny);
            ctx.write_u64(x, if flag { ny } else { ny + 5 });
            l1.unlock(ctx);
            l1.lock(ctx);
            let v = ctx.read_u64(y);
            ctx.write_u64(y, v / 2);
            l1.unlock(ctx);
        });
        let t2 = ctx.spawn(move |ctx| {
            l2.lock(ctx);
            let v = ctx.read_u64(x);
            ctx.write_u64(y, 2 * v);
            l2.unlock(ctx);
        });
        ctx.join(t1);
        ctx.join(t2);
    });
    let fx = session.image().read_u64_direct(x);
    let fy = session.image().read_u64_direct(y);
    (report, fx, fy)
}

#[test]
fn figure1_program_produces_complete_cpg() {
    let (report, x, y) = run_figure1();
    // Whatever the interleaving, x was written exactly once by T1.a.
    assert!(x == 1 || x == 6, "unexpected x = {x}");
    let _ = y;
    let stats = report.cpg.stats();
    assert_eq!(stats.threads, 3);
    assert!(stats.control_edges > 0);
    assert!(stats.sync_edges > 0);
    assert!(stats.data_edges > 0);
    report.cpg.validate().expect("CPG invariants");
}

#[test]
fn schedule_respects_happens_before_for_every_pair() {
    let (report, _, _) = run_figure1();
    let query = ProvenanceQuery::new(&report.cpg);
    let schedule = query.schedule();
    let position: std::collections::HashMap<_, _> =
        schedule.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    for a in report.cpg.nodes() {
        for b in report.cpg.nodes() {
            if a.happens_before(b) {
                assert!(position[&a.id] < position[&b.id]);
            }
        }
    }
}

#[test]
fn pt_log_decodes_to_the_recorded_branch_count() {
    let session = InspectorSession::new(SessionConfig::inspector());
    let report = session.run(|ctx| {
        ctx.set_pc(0x1000);
        for i in 0..5_000u64 {
            ctx.branch(i % 2 == 0);
        }
        ctx.call(0x2000);
    });
    // The perf session's full log must decode back to at least the recorded
    // number of branch events (trace start/stop markers add a few more).
    assert_eq!(report.stats.pt.branches, 5_001);
    assert!(report.space.log_bytes > 0);
}

#[test]
fn native_and_inspector_compute_identical_results_for_all_workloads() {
    for workload in all_workloads() {
        // streamcluster's result is interleaving-dependent by design (as in
        // the original benchmark), so it is checked only for invariants.
        if workload.name() == "streamcluster" {
            continue;
        }
        let native = workload.execute(SessionConfig::native(), 2, InputSize::Tiny);
        let tracked = workload.execute(SessionConfig::inspector(), 2, InputSize::Tiny);
        assert_eq!(
            native.checksum,
            tracked.checksum,
            "workload {} diverged between native and INSPECTOR runs",
            workload.name()
        );
    }
}

#[test]
fn every_workload_produces_a_valid_graph_with_all_edge_kinds() {
    for workload in all_workloads() {
        let result = workload.execute(SessionConfig::inspector(), 2, InputSize::Tiny);
        let cpg = &result.report.cpg;
        cpg.validate()
            .unwrap_or_else(|e| panic!("{}: invalid CPG: {e}", workload.name()));
        let stats = cpg.stats();
        assert!(stats.nodes > 0, "{}: empty CPG", workload.name());
        assert!(
            stats.control_edges > 0,
            "{}: no control edges",
            workload.name()
        );
        assert!(stats.sync_edges > 0, "{}: no sync edges", workload.name());
        assert!(stats.data_edges > 0, "{}: no data edges", workload.name());
        assert!(
            result.report.stats.pt.branches > 0,
            "{}: no branches traced",
            workload.name()
        );
    }
}

#[test]
fn decoded_aux_stream_matches_conditional_branch_count() {
    // Drive a run with a known number of conditional branches and decode the
    // AUX payload collected by the perf layer end to end.
    let session = InspectorSession::new(SessionConfig::inspector());
    let branches = 2_000u64;
    let report = session.run(|ctx| {
        for i in 0..branches {
            ctx.branch(i % 7 == 0);
        }
    });
    let log = session.provenance_log();
    assert_eq!(log.len() as u64, report.space.log_bytes);
    let events = PacketDecoder::new(&log).decode_events().unwrap();
    let conditionals = events
        .iter()
        .filter(|e| matches!(e, inspector::pt::branch::BranchEvent::Conditional { .. }))
        .count() as u64;
    assert_eq!(conditionals, branches);
}
