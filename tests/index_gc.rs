//! Property suite for the frontier-based index GC: for any schedule, FIFO
//! delivery interleaving, batch chunking, shard count, GC aggressiveness
//! (including a GC pass after *every* index append) and spill threshold,
//! the GC'd incremental build must stay node- and edge-identical to the
//! batch `CpgBuilder::build()` oracle — the GC may only drop index entries
//! no present or future resolution can select. A long interleaved
//! ping-pong run additionally pins the residency claim: live release-index
//! entries stay O(threads), not O(events).

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::core::event::{AccessKind, SyncKind};
use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::ids::{PageId, SyncObjectId, ThreadId};
use inspector::core::recorder::{SyncClockRegistry, ThreadRecorder};
use inspector::core::sharded::ShardedCpgBuilder;
use inspector::core::spill::SpillSettings;
use inspector::core::subcomputation::SubComputation;
use inspector::core::testing::announce_all;
use inspector::core::testing::ping_pong_sequences;
use proptest::prelude::*;

/// splitmix64, so each proptest case expands one seed into a full random
/// schedule deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Records a random multithreaded execution: a random *global* schedule of
/// reads, writes and release/acquire operations over small page and lock
/// pools, so the threads' vector clocks entangle in random ways (the same
/// shape as the `incremental_data_edges` and `spill_equivalence` suites).
fn random_sequences(seed: u64) -> Vec<Vec<SubComputation>> {
    let mut rng = Rng(seed);
    let threads = 2 + rng.below(3) as u32; // 2..=4
    let pages = 1 + rng.below(8); // 1..=8
    let locks = 1 + rng.below(3); // 1..=3
    let ops = 40 + rng.below(80); // 40..=119 operations, globally scheduled

    let registry = SyncClockRegistry::shared();
    let mut recs: Vec<ThreadRecorder> = (0..threads)
        .map(|t| ThreadRecorder::new(ThreadId::new(t), Arc::clone(&registry)))
        .collect();
    for _ in 0..ops {
        let t = rng.below(threads as u64) as usize;
        match rng.below(5) {
            0 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Read),
            1 | 2 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Write),
            3 => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Release);
            }
            _ => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Acquire);
            }
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

/// Streams the sequences in a random delivery interleaving that is FIFO per
/// thread, delivering a random-length α-contiguous *batch* from a random
/// thread each step — the `SubBatch` transport shape.
fn stream_random_batches(
    builder: &ShardedCpgBuilder,
    sequences: Vec<Vec<SubComputation>>,
    seed: u64,
    max_batch: usize,
) {
    announce_all(builder, &sequences);
    let mut rng = Rng(seed ^ 0x0BA7_C4ED);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut remaining: usize = cursors.iter().map(|c| c.len()).sum();
    while remaining > 0 {
        let pick = rng.below(cursors.len() as u64) as usize;
        let take = 1 + rng.below(max_batch as u64) as usize;
        let batch: Vec<SubComputation> = cursors[pick].by_ref().take(take).collect();
        if batch.is_empty() {
            continue;
        }
        remaining -= batch.len();
        builder.ingest_batch(batch);
    }
}

fn batch_build(sequences: &[Vec<SubComputation>]) -> Cpg {
    let mut builder = CpgBuilder::new();
    for seq in sequences {
        builder.add_thread(seq.clone());
    }
    builder.build()
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

fn node_fingerprint(cpg: &Cpg) -> Vec<String> {
    cpg.nodes().map(|n| format!("{n:?}")).collect()
}

/// A test-unique spill directory with tiny segments, so the GC × spill
/// interaction is exercised with constant segment rolling.
fn spill_settings(threshold: usize) -> SpillSettings {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "inspector-index-gc-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    SpillSettings {
        segment_bytes: 256,
        ..SpillSettings::new(threshold, dir)
    }
}

proptest! {
    #[test]
    fn gcd_build_matches_batch_over_random_everything(seed in any::<u64>()) {
        // Random schedule × random batched FIFO interleaving × random shard
        // count × random GC aggressiveness (biased toward interval 1, a GC
        // pass after every single index append) × random spill threshold:
        // the graph must be identical to the batch oracle and the seal-time
        // safety nets must stay idle.
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);

        let mut rng = Rng(seed ^ 0x006C_0A11);
        let shards = 1 + rng.below(8) as usize;
        let gc_interval = [1, 1, 1, 2, 8, 64][rng.below(6) as usize];
        let spill = [0usize, 0, 1, 4][rng.below(4) as usize];
        let max_batch = 1 + rng.below(7) as usize;

        let mut streaming = ShardedCpgBuilder::with_shards_and_spill(
            shards,
            (spill > 0).then(|| spill_settings(spill)),
        );
        streaming.set_index_gc_interval(gc_interval);
        stream_random_batches(&streaming, sequences, seed, max_batch);
        let sealed = streaming.seal();

        prop_assert_eq!(sealed.node_count(), reference.node_count());
        prop_assert_eq!(node_fingerprint(&sealed), node_fingerprint(&reference));
        prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
        prop_assert!(sealed.validate().is_ok());

        let stats = streaming.last_sealed_stats().expect("sealed once");
        prop_assert_eq!(stats.sync_resolved_at_seal, 0);
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
        // Entry accounting never leaks: live + GC'd covers exactly what
        // was appended (one release entry per release-terminated sub, one
        // page entry per written page per sub).
        let releases: u64 = reference
            .nodes()
            .filter(|n| {
                n.terminator.is_some_and(|sp| {
                    matches!(sp.kind, SyncKind::Release | SyncKind::ReleaseAcquire)
                })
            })
            .count() as u64;
        prop_assert_eq!(stats.release_entries_live + stats.release_entries_gcd, releases);
        let writes: u64 = reference.nodes().map(|n| n.write_set.len() as u64).sum();
        prop_assert_eq!(stats.page_entries_live + stats.page_entries_gcd, writes);
    }

    #[test]
    fn concurrent_pools_with_aggressive_gc_match_batch(seed in any::<u64>()) {
        // Real OS-thread producer pools (the runtime's lane routing) with a
        // GC pass after every append: races between parking, popping,
        // resolution and the GC floor must never cost an edge.
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);
        for pool in [2usize, 4] {
            let mut streaming = ShardedCpgBuilder::with_shards(4);
            streaming.set_index_gc_interval(1);
            announce_all(&streaming, &sequences);
            std::thread::scope(|scope| {
                for worker in 0..pool {
                    let streaming = &streaming;
                    let lanes: Vec<Vec<SubComputation>> = sequences
                        .iter()
                        .enumerate()
                        .filter(|(t, _)| t % pool == worker)
                        .map(|(_, seq)| seq.clone())
                        .collect();
                    scope.spawn(move || {
                        let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
                            lanes.into_iter().map(|s| s.into_iter()).collect();
                        let mut progressed = true;
                        while progressed {
                            progressed = false;
                            for cursor in &mut cursors {
                                if let Some(sub) = cursor.next() {
                                    streaming.ingest(sub);
                                    progressed = true;
                                }
                            }
                        }
                    });
                }
            });
            let sealed = streaming.seal();
            prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
            let stats = streaming.last_sealed_stats().expect("sealed");
            prop_assert_eq!(stats.sync_resolved_at_seal, 0);
            prop_assert_eq!(stats.data_resolved_at_seal, 0);
        }
    }
}

#[test]
fn ping_pong_release_index_is_o_threads_not_o_events() {
    // The headline residency claim: a long two-thread ping-pong run on one
    // lock keeps the live release index O(threads) — with slack for the GC
    // cadence — while the GC'd counter absorbs the O(events) bulk. The
    // graph still matches the oracle exactly.
    let rounds = 1000u64;
    let sequences = ping_pong_sequences(2, rounds);
    let reference = batch_build(&sequences);
    let total_releases: u64 = 2 * rounds; // one release per round per thread

    let streaming = ShardedCpgBuilder::with_shards(2);
    announce_all(&streaming, &sequences);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for cursor in &mut cursors {
            if let Some(sub) = cursor.next() {
                streaming.ingest(sub);
                progressed = true;
            }
        }
    }
    let stats = streaming.stats();
    assert_eq!(
        stats.release_entries_live + stats.release_entries_gcd,
        total_releases
    );
    // O(threads) with GC-cadence slack — crucially, independent of the
    // round count: doubling `rounds` leaves this bound unchanged.
    let interval = inspector::core::sharded::DEFAULT_INDEX_GC_INTERVAL as u64;
    let bound = 2 * (2 * interval + 8);
    assert!(
        stats.release_entries_live < bound,
        "live release entries {} should stay below {bound} over {} events",
        stats.release_entries_live,
        stats.ingested
    );
    assert!(
        stats.page_entries_live < bound + 16,
        "live page entries {} should stay bounded",
        stats.page_entries_live
    );
    assert!(stats.release_entries_gcd > total_releases / 2);

    let sealed = streaming.seal();
    assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
    assert!(sealed.validate().is_ok());
}

#[test]
fn gc_disabled_reproduces_o_events_growth() {
    // The counterfactual for the test above: with the GC off, the same
    // run's live release index grows with the event count — which is
    // exactly the superlinear-seal regime the GC exists to remove.
    let rounds = 300u64;
    let sequences = ping_pong_sequences(2, rounds);
    let mut streaming = ShardedCpgBuilder::with_shards(2);
    streaming.set_index_gc_interval(0);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for cursor in &mut cursors {
            if let Some(sub) = cursor.next() {
                streaming.ingest(sub);
                progressed = true;
            }
        }
    }
    let stats = streaming.stats();
    assert_eq!(stats.release_entries_gcd, 0);
    assert_eq!(stats.release_entries_live, 2 * rounds);
    assert!(streaming.seal().validate().is_ok());
}
