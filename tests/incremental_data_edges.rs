//! Property suite for incremental data-dependence resolution: over random
//! write/read/clock interleavings, the streaming builder's ingest-time
//! (clock-frontier-gated) last-writer resolution must produce exactly the
//! edges the batch `CpgBuilder` derives offline — and whenever every
//! frontier was delivered before the seal, the seal-time safety net must
//! have had nothing to do (`data_resolved_at_seal == 0`,
//! `sync_resolved_at_seal == 0`).

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::core::event::{AccessKind, SyncKind};
use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::ids::{PageId, SyncObjectId, ThreadId};
use inspector::core::recorder::{SyncClockRegistry, ThreadRecorder};
use inspector::core::sharded::ShardedCpgBuilder;
use inspector::core::subcomputation::SubComputation;
use inspector::core::testing::announce_all;
use proptest::prelude::*;

/// splitmix64, so each proptest case expands one seed into a full random
/// schedule deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Records a random multithreaded execution: a random *global* schedule of
/// reads, writes and release/acquire/barrier operations over small page and
/// lock pools, so the threads' vector clocks entangle in random ways.
fn random_sequences(seed: u64) -> Vec<Vec<SubComputation>> {
    let mut rng = Rng(seed);
    let threads = 2 + rng.below(3) as u32; // 2..=4
    let pages = 1 + rng.below(8); // 1..=8
    let locks = 1 + rng.below(3); // 1..=3
    let ops = 30 + rng.below(60); // 30..=89 operations, globally scheduled

    let registry = SyncClockRegistry::shared();
    let mut recs: Vec<ThreadRecorder> = (0..threads)
        .map(|t| ThreadRecorder::new(ThreadId::new(t), Arc::clone(&registry)))
        .collect();
    for _ in 0..ops {
        let t = rng.below(threads as u64) as usize;
        match rng.below(5) {
            0 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Read),
            1 | 2 => recs[t].on_memory_access(PageId::new(rng.below(pages)), AccessKind::Write),
            3 => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Release);
            }
            _ => {
                recs[t]
                    .on_synchronization(SyncObjectId::new(1 + rng.below(locks)), SyncKind::Acquire);
            }
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

/// Streams the sequences in a random delivery interleaving that is FIFO per
/// thread (repeatedly picking a random non-empty thread cursor).
fn stream_random_interleaving(
    builder: &ShardedCpgBuilder,
    sequences: Vec<Vec<SubComputation>>,
    seed: u64,
) {
    announce_all(builder, &sequences);
    let mut rng = Rng(seed ^ 0xDEAD_BEEF);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut remaining: usize = cursors.iter().map(|c| c.len()).sum();
    while remaining > 0 {
        let pick = rng.below(cursors.len() as u64) as usize;
        if let Some(sub) = cursors[pick].next() {
            builder.ingest(sub);
            remaining -= 1;
        }
    }
}

fn batch_build(sequences: &[Vec<SubComputation>]) -> Cpg {
    let mut builder = CpgBuilder::new();
    for seq in sequences {
        builder.add_thread(seq.clone());
    }
    builder.build()
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

proptest! {
    #[test]
    fn incremental_resolution_matches_batch_over_random_interleavings(seed in any::<u64>()) {
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);

        let mut rng = Rng(seed ^ 0x5EED);
        let shards = 1 + rng.below(8) as usize;
        let streaming = ShardedCpgBuilder::with_shards(shards);
        stream_random_interleaving(&streaming, sequences, seed);
        let sealed = streaming.seal();

        prop_assert_eq!(sealed.node_count(), reference.node_count());
        prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
        prop_assert!(sealed.validate().is_ok());

        // Everything was delivered before the seal, so both seal-time
        // safety nets must have stayed idle: every synchronization and
        // data edge was pinned and emitted during ingestion.
        let stats = streaming.last_sealed_stats().expect("sealed once");
        prop_assert_eq!(stats.sync_resolved_at_seal, 0);
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
    }

    #[test]
    fn adversarial_whole_thread_delivery_still_matches_batch(seed in any::<u64>()) {
        // Whole threads delivered back to back in reverse thread order —
        // the most skewed delivery the per-thread FIFO contract allows, so
        // readers and acquires park in bulk and resolve via the frontier
        // wait-index, never via a seal-time pass.
        let sequences = random_sequences(seed);
        let reference = batch_build(&sequences);

        let streaming = ShardedCpgBuilder::with_shards(4);
        announce_all(&streaming, &sequences);
        for seq in sequences.into_iter().rev() {
            for sub in seq {
                streaming.ingest(sub);
            }
        }
        let sealed = streaming.seal();

        prop_assert_eq!(edge_fingerprint(&sealed), edge_fingerprint(&reference));
        let stats = streaming.last_sealed_stats().expect("sealed once");
        prop_assert_eq!(stats.sync_resolved_at_seal, 0);
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
    }

    #[test]
    fn data_edges_survive_builder_reuse(seed in any::<u64>()) {
        // Sealing must fully reset the write index, the wait indexes and
        // the counters: a second identical build on the same builder
        // produces identical edges and fresh counters.
        let sequences = random_sequences(seed);
        let streaming = ShardedCpgBuilder::with_shards(3);
        stream_random_interleaving(&streaming, sequences.clone(), seed);
        let first = streaming.seal();
        stream_random_interleaving(&streaming, sequences, seed.wrapping_add(1));
        let second = streaming.seal();

        prop_assert_eq!(edge_fingerprint(&first), edge_fingerprint(&second));
        let stats = streaming.last_sealed_stats().expect("sealed twice");
        prop_assert_eq!(stats.ingested as usize, second.node_count());
        prop_assert_eq!(stats.data_resolved_at_seal, 0);
    }
}
