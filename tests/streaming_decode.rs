//! Round-trip suite for the streaming PT decoder: over **any** chunking of
//! **any** encoded branch stream, [`StreamingDecoder`] must yield exactly
//! the events the batch [`PacketDecoder`] produces on the concatenated
//! bytes (property-tested); after corruption it must report exactly one
//! error, resynchronise at the next PSB, and lose at most one PSB window —
//! and a real [`InspectorSession`] run with `decode_online` must decode
//! every recorded branch without perturbing the graph.
//!
//! The windowed parallel path carries the same contracts: over any stream
//! (arbitrary byte soups included), any chunking and any worker/window
//! fan-out, `decode_windowed` and the incremental
//! scanner→decoder→reassembler pipeline must be event- and
//! counter-identical to the serial streaming decoder.

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::prelude::*;
use inspector::pt::branch::BranchEvent;
use inspector::pt::decode::{DecodeError, PacketDecoder};
use inspector::pt::encode::{EncoderConfig, PacketEncoder};
use inspector::pt::stream::StreamingDecoder;
use inspector::pt::trace::ThreadTrace;
use inspector::pt::window::{decode_windowed, Reassembler, WindowDecoder, WindowScanner};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Derives one branch event from a random seed: mostly conditionals (as in
/// real traces), with indirect branches and returns mixed in, including
/// far-apart targets that defeat last-IP compression.
fn event_from_seed(seed: u64) -> BranchEvent {
    match seed % 10 {
        0 => BranchEvent::Indirect {
            target: 0x40_0000 + (seed >> 4) % 0x10_0000,
        },
        1 => BranchEvent::Return {
            target: (seed >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
        2 => BranchEvent::Indirect {
            target: seed, // arbitrary 64-bit targets
        },
        _ => BranchEvent::Conditional {
            taken: seed & 1 == 0,
        },
    }
}

/// Encodes `seeds` as branch events with the given periodic-PSB interval
/// (0 disables periodic PSBs), begin/finish markers included.
fn encode_seeds(seeds: &[u64], psb_interval_bytes: usize) -> Vec<u8> {
    let mut enc = PacketEncoder::with_config(EncoderConfig {
        psb_interval_bytes,
        ..EncoderConfig::default()
    });
    enc.begin(0x40_0000);
    for &s in seeds {
        enc.branch(&event_from_seed(s));
    }
    enc.finish()
}

/// Streams `bytes` through a fresh decoder cut at `cut_points`, asserting a
/// clean decode, and returns the yielded events.
fn stream_with_cuts(bytes: &[u8], cut_points: &[usize]) -> Vec<BranchEvent> {
    let mut cuts: Vec<usize> = cut_points.to_vec();
    cuts.push(bytes.len());
    cuts.sort_unstable();
    cuts.dedup();
    let mut dec = StreamingDecoder::new();
    let mut out = Vec::new();
    let mut prev = 0;
    for &cut in &cuts {
        dec.push(&bytes[prev..cut]);
        prev = cut;
        for item in dec.events() {
            out.push(item.expect("well-formed stream must decode cleanly"));
        }
    }
    dec.push(&bytes[prev..]);
    dec.finish();
    for item in dec.events() {
        out.push(item.expect("well-formed stream must decode cleanly"));
    }
    assert_eq!(dec.stats().errors, 0);
    assert_eq!(dec.buffered(), 0, "finish must consume the whole stream");
    out
}

// ---------------------------------------------------------------------------
// Property: streaming ≡ batch for any chunking (the tentpole contract)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn streaming_equals_batch_for_any_chunking(
        seeds in vec(any::<u64>(), 1..300),
        raw_cuts in vec(any::<u64>(), 0..24),
        psb_sel in 0u64..4,
    ) {
        // Sweep PSB density so cuts land inside PSB runs, TNT runs and TIP
        // payloads alike.
        let psb_interval = [0usize, 64, 256, 4096][psb_sel as usize];
        let bytes = encode_seeds(&seeds, psb_interval);
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        // Random cut offsets, explicitly including mid-packet positions.
        let cuts: Vec<usize> = raw_cuts
            .iter()
            .map(|&c| (c as usize) % (bytes.len() + 1))
            .collect();
        let streamed = stream_with_cuts(&bytes, &cuts);
        prop_assert_eq!(streamed, reference);
    }

    #[test]
    fn single_byte_chunks_equal_batch(seeds in vec(any::<u64>(), 1..80)) {
        // The worst chunking there is: every packet is cut at every offset.
        let bytes = encode_seeds(&seeds, 128);
        let reference = PacketDecoder::new(&bytes).decode_events().unwrap();
        let cuts: Vec<usize> = (0..bytes.len()).collect();
        let streamed = stream_with_cuts(&bytes, &cuts);
        prop_assert_eq!(streamed, reference);
    }

    #[test]
    fn thread_trace_drains_stream_decode(
        seeds in vec(any::<u64>(), 1..400),
        drain_every in 1u64..64,
    ) {
        // The producer side of the pipeline: a ThreadTrace drained at
        // irregular boundaries must stream-decode to the same events as the
        // undrained log — and every drained chunk must decode standalone
        // (no partial tail is ever handed out).
        let mut trace = ThreadTrace::new(0x40_0000);
        let mut dec = StreamingDecoder::new();
        for (i, &s) in seeds.iter().enumerate() {
            trace.record(event_from_seed(s));
            if i as u64 % drain_every == drain_every - 1 {
                trace.flush();
                let chunk = trace.drain_collected();
                PacketDecoder::new(&chunk)
                    .decode_events()
                    .expect("drained chunks end on packet boundaries");
                dec.push(&chunk);
            }
        }
        let (tail, _) = trace.finish();
        dec.push(&tail);
        dec.finish();
        let streamed: Vec<BranchEvent> =
            dec.events().map(|i| i.expect("clean stream")).collect();
        prop_assert_eq!(dec.stats().errors, 0);
        // Conditionals and indirect transfers survive byte-exactly; only
        // the Return/Indirect distinction is lost (both are TIPs), exactly
        // as in the batch decoder.
        let expected: Vec<BranchEvent> = seeds
            .iter()
            .map(|&s| match event_from_seed(s) {
                BranchEvent::Return { target } => BranchEvent::Indirect { target },
                e => e,
            })
            .collect();
        let branches: Vec<BranchEvent> = streamed
            .iter()
            .copied()
            .filter(|e| {
                matches!(
                    e,
                    BranchEvent::Conditional { .. } | BranchEvent::Indirect { .. }
                )
            })
            .collect();
        prop_assert_eq!(branches, expected);
    }
}

// ---------------------------------------------------------------------------
// Property: windowed ≡ serial ≡ batch (the parallel-decode contract)
// ---------------------------------------------------------------------------

/// Serial streaming reference: the whole stream through one decoder,
/// events and in-band errors in order, plus the final counters.
fn serial_items(
    bytes: &[u8],
) -> (
    Vec<Result<BranchEvent, DecodeError>>,
    inspector::pt::StreamStats,
) {
    let mut dec = StreamingDecoder::new();
    dec.push(bytes);
    dec.finish();
    let items: Vec<_> = dec.events().collect();
    (items, dec.stats())
}

proptest! {
    #[test]
    fn windowed_equals_serial_and_batch_for_any_stream(
        seeds in vec(any::<u64>(), 1..300),
        psb_sel in 0u64..4,
        workers_sel in 0usize..4,
    ) {
        // Sweep PSB density (0 = a single degenerate window) and the
        // worker/window fan-out: the parallel decode must be event- and
        // counter-identical to serial streaming, which equals batch.
        let psb_interval = [0usize, 64, 256, 4096][psb_sel as usize];
        let workers = [1usize, 2, 4, 8][workers_sel];
        let bytes = encode_seeds(&seeds, psb_interval);
        let batch = PacketDecoder::new(&bytes).decode_events().unwrap();
        let (serial, serial_stats) = serial_items(&bytes);
        let (windowed, stats) = decode_windowed(&bytes, workers);
        prop_assert_eq!(&windowed, &serial);
        prop_assert_eq!(stats, serial_stats);
        prop_assert_eq!(stats.errors, 0);
        let clean: Vec<BranchEvent> =
            windowed.into_iter().map(|item| item.unwrap()).collect();
        prop_assert_eq!(clean, batch);
    }

    #[test]
    fn windowed_equals_serial_on_arbitrary_bytes(
        data in vec(any::<u8>(), 0..2048),
        workers_sel in 0usize..4,
    ) {
        // Any byte soup — corrupted, truncated, PSB-free, or all three:
        // the parallel path must still be indistinguishable from serial,
        // in-band errors and resync accounting included.
        let workers = [1usize, 2, 4, 8][workers_sel];
        let (serial, serial_stats) = serial_items(&data);
        let (windowed, stats) = decode_windowed(&data, workers);
        prop_assert_eq!(windowed, serial);
        prop_assert_eq!(stats, serial_stats);
    }

    #[test]
    fn windowed_pipeline_is_chunking_invariant_under_corruption(
        seeds in vec(any::<u64>(), 1..200),
        psb_sel in 0u64..3,
        do_corrupt in any::<bool>(),
        corrupt_pos in any::<u64>(),
        corrupt_byte in any::<u8>(),
        chunk in 1usize..512,
    ) {
        // The incremental scanner→window-decoder→reassembler pipeline (the
        // shape the ingest pool runs) over any chunking, optionally with an
        // arbitrary byte overwritten: exactly the serial single in-band
        // error, the same resync window lost, the same counters.
        let psb_interval = [64usize, 256, 4096][psb_sel as usize];
        let mut bytes = encode_seeds(&seeds, psb_interval);
        if do_corrupt {
            let at = (corrupt_pos as usize) % bytes.len();
            bytes[at] = corrupt_byte;
        }
        let (serial, serial_stats) = serial_items(&bytes);
        let mut decoder = WindowDecoder::new();
        let mut scanner = WindowScanner::new();
        let mut reasm = Reassembler::new(true);
        for c in bytes.chunks(chunk) {
            for window in scanner.push(c) {
                reasm.accept(decoder.decode(window));
            }
        }
        reasm.accept(decoder.decode(scanner.flush()));
        reasm.finish();
        prop_assert_eq!(reasm.take_events(), serial);
        prop_assert_eq!(reasm.stats(), serial_stats);
    }
}

// ---------------------------------------------------------------------------
// Corruption recovery: one error, one resync, at most one PSB window lost
// ---------------------------------------------------------------------------

/// Decodes `bytes` packet-by-packet and returns each packet's start offset
/// together with whether it is a PSB.
fn packet_starts(bytes: &[u8]) -> Vec<(usize, bool)> {
    let mut dec = PacketDecoder::new(bytes);
    let mut out = Vec::new();
    loop {
        let pos = dec.position();
        match dec.next_packet() {
            Ok(Some(p)) => out.push((pos, p.mnemonic() == "PSB")),
            Ok(None) => break,
            Err(e) => panic!("clean stream failed to decode: {e}"),
        }
    }
    out
}

/// Builds a PSB-dense stream whose TIP payload bytes can never fake a PSB
/// pattern (no `0x82` bytes), so resync points are unambiguous.
fn psb_dense_stream() -> Vec<u8> {
    let mut enc = PacketEncoder::with_config(EncoderConfig {
        psb_interval_bytes: 96,
        ..EncoderConfig::default()
    });
    enc.begin(0x40_0000);
    for i in 0..600u64 {
        if i % 4 == 0 {
            enc.branch(&BranchEvent::Indirect {
                target: 0x40_0000 + (i % 64) * 8,
            });
        } else {
            enc.branch(&BranchEvent::Conditional { taken: i % 2 == 0 });
        }
    }
    enc.finish()
}

/// Runs a corrupted stream through the streaming decoder in small chunks
/// and splits the outcome into events and errors.
fn stream_corrupt(
    bytes: &[u8],
) -> (
    Vec<BranchEvent>,
    Vec<DecodeError>,
    inspector::pt::StreamStats,
) {
    let mut dec = StreamingDecoder::new();
    let mut events = Vec::new();
    let mut errors = Vec::new();
    for chunk in bytes.chunks(17) {
        dec.push(chunk);
        for item in dec.events() {
            match item {
                Ok(e) => events.push(e),
                Err(e) => errors.push(e),
            }
        }
    }
    dec.finish();
    for item in dec.events() {
        match item {
            Ok(e) => events.push(e),
            Err(e) => errors.push(e),
        }
    }
    (events, errors, dec.stats())
}

#[test]
fn inserted_garbage_costs_one_error_and_at_most_one_psb_window() {
    let clean = psb_dense_stream();
    let reference = PacketDecoder::new(&clean).decode_events().unwrap();
    let starts = packet_starts(&clean);
    let psbs: Vec<usize> = starts
        .iter()
        .filter(|(_, is_psb)| *is_psb)
        .map(|(pos, _)| *pos)
        .collect();
    assert!(psbs.len() >= 3, "need several PSB windows, got {psbs:?}");

    // Corrupt at a packet boundary strictly inside the second PSB window.
    let in_window = starts
        .iter()
        .map(|(pos, _)| *pos)
        .find(|&pos| pos > psbs[1] + 20 && pos < psbs[2])
        .expect("packet inside the second window");
    let mut corrupt = clean[..in_window].to_vec();
    corrupt.push(0x03); // undecodable IP-family header
    corrupt.extend_from_slice(&clean[in_window..]);

    let (events, errors, stats) = stream_corrupt(&corrupt);

    // Exactly one in-band error, and it names the bad byte.
    assert_eq!(errors.len(), 1, "errors: {errors:?}");
    assert!(matches!(
        errors[0],
        DecodeError::UnknownPacket { byte: 0x03, .. }
    ));
    assert_eq!(stats.resyncs, 1);

    // The decode is the clean prefix + everything from the resync PSB on.
    let mut expected = PacketDecoder::new(&clean[..in_window])
        .decode_events()
        .unwrap();
    expected.extend(
        PacketDecoder::new(&clean[psbs[2]..])
            .decode_events()
            .unwrap(),
    );
    assert_eq!(events, expected);

    // Lost events are bounded by one PSB window.
    let window_events = PacketDecoder::new(&clean[psbs[1]..psbs[2]])
        .decode_events()
        .unwrap()
        .len();
    let lost = reference.len() - events.len();
    assert!(
        lost <= window_events,
        "lost {lost} events, window holds {window_events}"
    );
}

#[test]
fn flipped_escape_costs_one_error_and_resyncs() {
    let clean = psb_dense_stream();
    let starts = packet_starts(&clean);
    let psbs: Vec<usize> = starts
        .iter()
        .filter(|(_, is_psb)| *is_psb)
        .map(|(pos, _)| *pos)
        .collect();
    let in_window = starts
        .iter()
        .map(|(pos, _)| *pos)
        .find(|&pos| pos > psbs[1] && pos < psbs[2])
        .unwrap();
    // Flip the packet header into an unknown escape sequence.
    let mut corrupt = clean[..in_window].to_vec();
    corrupt.extend_from_slice(&[0x02, 0x55]);
    corrupt.extend_from_slice(&clean[in_window..]);

    let (events, errors, stats) = stream_corrupt(&corrupt);
    assert_eq!(errors.len(), 1);
    assert!(matches!(
        errors[0],
        DecodeError::UnknownPacket { byte: 0x55, .. }
    ));
    assert_eq!(stats.resyncs, 1);
    // The stream resumes intact from the next PSB.
    let resumed = PacketDecoder::new(&clean[psbs[2]..])
        .decode_events()
        .unwrap();
    assert!(events.ends_with(&resumed));
}

// ---------------------------------------------------------------------------
// End-to-end: decode-while-running inside a real session
// ---------------------------------------------------------------------------

/// A deterministic single-threaded workload (no sync-object ids anywhere,
/// so two runs produce bit-identical graphs).
fn run_deterministic(decode_online: bool) -> RunReport {
    let session =
        InspectorSession::new(SessionConfig::inspector().with_decode_online(decode_online));
    let region = session.map_region("data", 4 * 4096);
    let base = region.base();
    session.run(move |ctx| {
        ctx.set_pc(0x40_1000);
        for i in 0..3_000u64 {
            ctx.branch(i % 3 == 0);
            if i % 32 == 0 {
                ctx.call(0x40_2000 + (i % 16) * 64);
            }
            ctx.write_u64(base.add((i % 4) * 4096), i);
        }
    })
}

/// Order-independent fingerprint of a graph's nodes and edges.
fn fingerprint(cpg: &Cpg) -> (BTreeSet<String>, BTreeSet<String>) {
    (
        cpg.nodes().map(|n| format!("{:?}", n.id)).collect(),
        cpg.edges().map(|e| format!("{e:?}")).collect(),
    )
}

#[test]
fn online_decode_recovers_every_branch_and_leaves_the_graph_unchanged() {
    let on = run_deterministic(true);
    let off = run_deterministic(false);

    // The decode stage observed the full control flow, cleanly.
    assert!(on.stats.decoded_branches > 0);
    assert_eq!(on.stats.decoded_branches, on.stats.pt.branches);
    assert_eq!(on.stats.decode_errors, 0);
    assert_eq!(on.stats.decode_mismatches, 0);
    assert!(on.stats.decode_bytes > 0);
    assert!(on.stats.decode_time > std::time::Duration::ZERO);

    // …and decoding is a pure observer: the provenance graph is identical
    // to a run with decoding off.
    assert_eq!(on.cpg.node_count(), off.cpg.node_count());
    assert_eq!(fingerprint(&on.cpg), fingerprint(&off.cpg));
    on.cpg.validate().expect("CPG invariants");

    // The decode-off run spends nothing on pt_decode.
    assert_eq!(off.stats.decoded_branches, 0);
    assert_eq!(off.stats.decode_time, std::time::Duration::ZERO);

    // The pt_decode phase shows up in the Figure 6 breakdown.
    let breakdown = inspector::runtime::report::PhaseBreakdown::split(2.0, &on.stats);
    assert!(
        breakdown.decode_overhead > 0.0,
        "nonzero pt_decode share expected, got {breakdown:?}"
    );
}

#[test]
fn online_decode_cross_check_holds_under_concurrency() {
    let session = InspectorSession::new(
        SessionConfig::inspector()
            .with_decode_online(true)
            .with_ingest_threads(3),
    );
    let counter = session.map_region("counter", 8).base();
    let lock = Arc::new(InspMutex::new());
    let report = session.run(move |ctx| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                for i in 0..200u64 {
                    ctx.branch(i % 2 == 0);
                    if i % 20 == 0 {
                        lock.lock(ctx);
                        let v = ctx.read_u64(counter);
                        ctx.write_u64(counter, v + 1);
                        lock.unlock(ctx);
                    }
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }
    });
    assert_eq!(report.stats.decode_errors, 0);
    assert_eq!(report.stats.decode_mismatches, 0);
    assert_eq!(report.stats.decoded_branches, report.stats.pt.branches);
    assert!(report.stats.pt.branches >= 4 * 200);
    report.cpg.validate().expect("CPG invariants");
    // Whatever the interleaving, the workload's semantics held too.
    assert_eq!(session.image().read_u64_direct(counter), 4 * 10);
}
