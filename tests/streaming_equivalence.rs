//! Equivalence suite for the streaming CPG pipeline: the sharded/streaming
//! builder must produce a graph that is node- and edge-identical to the
//! reference batch build, for every workload shape, thread count, delivery
//! interleaving and shard count — and the graphs coming out of real
//! [`InspectorSession`] runs must satisfy the same property.

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::core::event::{AccessKind, SyncKind};
use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::ids::{PageId, SyncObjectId, ThreadId};
use inspector::core::recorder::{SyncClockRegistry, ThreadRecorder};
use inspector::core::sharded::ShardedCpgBuilder;
use inspector::core::subcomputation::SubComputation;
use inspector::core::testing::announce_all;
use inspector::prelude::*;

// ---------------------------------------------------------------------------
// Synthetic recorder-driven workloads (deterministic schedules)
// ---------------------------------------------------------------------------

/// Global-lock counter: every thread repeatedly acquires one lock, reads and
/// writes a small set of shared pages, and releases.
fn lock_heavy(threads: u32) -> Vec<Vec<SubComputation>> {
    inspector::core::testing::lock_heavy_sequences(threads, 25, 6, 6)
}

/// Barrier-phased pipeline: every thread writes its own page, joins a
/// release-acquire barrier, then reads its neighbour's page — repeated for
/// several phases.
fn barrier_phases(threads: u32) -> Vec<Vec<SubComputation>> {
    let registry = SyncClockRegistry::shared();
    let mut recs: Vec<ThreadRecorder> = (0..threads)
        .map(|t| ThreadRecorder::new(ThreadId::new(t), Arc::clone(&registry)))
        .collect();
    for phase in 0..8u64 {
        let barrier = SyncObjectId::new(100 + phase);
        for (t, rec) in recs.iter_mut().enumerate() {
            rec.on_memory_access(PageId::new(1000 + t as u64), AccessKind::Write);
        }
        // Barrier: everyone releases, then everyone acquires (the recorder
        // convention for a barrier is a combined release-acquire).
        for rec in recs.iter_mut() {
            rec.on_synchronization(barrier, SyncKind::ReleaseAcquire);
        }
        for (t, rec) in recs.iter_mut().enumerate() {
            let neighbour = (t as u64 + 1) % threads as u64;
            rec.on_memory_access(PageId::new(1000 + neighbour), AccessKind::Read);
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

/// Producer/consumer chain: thread `t` hands a value page to thread `t+1`
/// through a dedicated release/acquire object, forming a chain of
/// cross-thread data dependencies.
fn producer_chain(threads: u32) -> Vec<Vec<SubComputation>> {
    let registry = SyncClockRegistry::shared();
    let mut recs: Vec<ThreadRecorder> = (0..threads)
        .map(|t| ThreadRecorder::new(ThreadId::new(t), Arc::clone(&registry)))
        .collect();
    for round in 0..10u64 {
        for t in 0..threads as usize {
            let page = PageId::new(2000 + round * 64 + t as u64);
            recs[t].on_memory_access(page, AccessKind::Write);
            let link = SyncObjectId::new(500 + round * 64 + t as u64);
            recs[t].on_synchronization(link, SyncKind::Release);
            if t + 1 < threads as usize {
                recs[t + 1].on_synchronization(link, SyncKind::Acquire);
                recs[t + 1].on_memory_access(page, AccessKind::Read);
            }
        }
    }
    recs.into_iter().map(|r| r.finish()).collect()
}

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

fn node_fingerprint(cpg: &Cpg) -> Vec<String> {
    cpg.nodes().map(|n| format!("{n:?}")).collect()
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

fn assert_identical(streamed: &Cpg, reference: &Cpg, context: &str) {
    assert_eq!(
        streamed.node_count(),
        reference.node_count(),
        "{context}: node counts differ"
    );
    assert_eq!(
        node_fingerprint(streamed),
        node_fingerprint(reference),
        "{context}: node sets differ"
    );
    assert_eq!(
        streamed.edge_count(),
        reference.edge_count(),
        "{context}: edge counts differ"
    );
    assert_eq!(
        edge_fingerprint(streamed),
        edge_fingerprint(reference),
        "{context}: edge sets differ"
    );
    assert!(
        streamed.validate().is_ok(),
        "{context}: invalid streamed CPG"
    );
}

fn batch_build(sequences: &[Vec<SubComputation>]) -> Cpg {
    let mut builder = CpgBuilder::new();
    for seq in sequences {
        builder.add_thread(seq.clone());
    }
    builder.build()
}

/// Streams the sequences round-robin across threads (FIFO per thread).
fn stream_round_robin(sequences: Vec<Vec<SubComputation>>, shards: usize) -> Cpg {
    let builder = ShardedCpgBuilder::with_shards(shards);
    announce_all(&builder, &sequences);
    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
        sequences.into_iter().map(|s| s.into_iter()).collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for cursor in &mut cursors {
            if let Some(sub) = cursor.next() {
                builder.ingest(sub);
                progressed = true;
            }
        }
    }
    builder.seal()
}

/// Streams whole threads one after another, in *reverse* thread order — the
/// most adversarial delivery the per-thread FIFO contract allows.
fn stream_thread_at_a_time_reversed(sequences: Vec<Vec<SubComputation>>, shards: usize) -> Cpg {
    let builder = ShardedCpgBuilder::with_shards(shards);
    announce_all(&builder, &sequences);
    for seq in sequences.into_iter().rev() {
        for sub in seq {
            builder.ingest(sub);
        }
    }
    builder.seal()
}

// ---------------------------------------------------------------------------
// Synthetic-workload equivalence across threads, shards and interleavings
// ---------------------------------------------------------------------------

#[test]
fn synthetic_workloads_stream_identically_across_threads_and_shards() {
    type Generator = fn(u32) -> Vec<Vec<SubComputation>>;
    let generators: [(&str, Generator); 3] = [
        ("lock_heavy", lock_heavy),
        ("barrier_phases", barrier_phases),
        ("producer_chain", producer_chain),
    ];
    for (name, generate) in generators {
        for threads in [1u32, 4, 8] {
            let sequences = generate(threads);
            let reference = batch_build(&sequences);
            for shards in [1usize, 3, 8] {
                let context = format!("{name}/threads={threads}/shards={shards}");
                let streamed = stream_round_robin(sequences.clone(), shards);
                assert_identical(&streamed, &reference, &format!("{context}/round-robin"));
                let adversarial = stream_thread_at_a_time_reversed(sequences.clone(), shards);
                assert_identical(&adversarial, &reference, &format!("{context}/reversed"));
            }
        }
    }
}

#[test]
fn empty_and_single_sub_streams_match_batch() {
    // Degenerate shapes: nothing ingested, and a single thread that never
    // synchronizes (one trailing sub-computation).
    let empty = ShardedCpgBuilder::new().seal();
    assert_eq!(empty.node_count(), 0);
    assert_eq!(empty.edge_count(), 0);

    let registry = SyncClockRegistry::shared();
    let mut rec = ThreadRecorder::new(ThreadId::new(0), registry);
    rec.on_memory_access(PageId::new(1), AccessKind::Write);
    rec.on_memory_access(PageId::new(1), AccessKind::Read);
    let sequences = vec![rec.finish()];
    let reference = batch_build(&sequences);
    let streamed = stream_round_robin(sequences, 4);
    assert_identical(&streamed, &reference, "single-sub");
}

// ---------------------------------------------------------------------------
// End-to-end: real sessions produce batch-identical graphs
// ---------------------------------------------------------------------------

/// Rebuilds a batch CPG from the per-thread sequences stored in a streamed
/// graph's node set (the nodes carry everything the batch builder needs).
fn rebatch(cpg: &Cpg) -> Cpg {
    let mut builder = CpgBuilder::new();
    for thread in cpg.threads() {
        let seq: Vec<SubComputation> = cpg
            .thread_sequence(thread)
            .into_iter()
            .map(|id| cpg.node(id).expect("listed node exists").clone())
            .collect();
        builder.add_thread(seq);
    }
    builder.build()
}

#[test]
fn real_session_graphs_match_batch_rebuild() {
    // Sweep worker count × ingest-pool width: the graph must be identical
    // regardless of how many ingest workers drained the provenance lanes.
    // The base config honours the CI knob matrix (`INSPECTOR_DECODE_ONLINE`,
    // `INSPECTOR_SPILL_THRESHOLD`, ...) so every documented env combination
    // actually exercises this equivalence property; the pool width stays an
    // explicit sweep.
    for workers in [1usize, 4, 8] {
        for pool in [1usize, 4] {
            let session = InspectorSession::new(
                SessionConfig::inspector()
                    .apply_env()
                    .with_ingest_threads(pool),
            );
            let counter = session.map_region("counter", 8).base();
            let staging = session.map_region("staging", 4096 * 8).base();
            let lock = Arc::new(InspMutex::new());
            let report = session.run(move |ctx| {
                let mut handles = Vec::new();
                for w in 0..workers {
                    let lock = Arc::clone(&lock);
                    handles.push(ctx.spawn(move |ctx| {
                        for i in 0..6u64 {
                            ctx.write_u64(staging.add(w as u64 * 4096), i);
                            lock.lock(ctx);
                            let v = ctx.read_u64(counter);
                            ctx.write_u64(counter, v + 1);
                            lock.unlock(ctx);
                        }
                    }));
                }
                for h in handles {
                    ctx.join(h);
                }
            });
            let reference = rebatch(&report.cpg);
            assert_identical(
                &report.cpg,
                &reference,
                &format!("session/workers={workers}/pool={pool}"),
            );
            assert_eq!(session.image().read_u64_direct(counter), 6 * workers as u64);
            assert_eq!(report.stats.ingest_workers, pool);
            // Complete runs never leave work for the seal-time safety nets.
            let stats = session.ingest_stats();
            assert_eq!(stats.sync_resolved_at_seal, 0, "pool={pool}: {stats:?}");
            assert_eq!(stats.data_resolved_at_seal, 0, "pool={pool}: {stats:?}");
        }
    }
}

#[test]
fn no_acquire_is_left_unresolved_after_a_session_run() {
    let session = InspectorSession::new(SessionConfig::inspector());
    let cell = session.map_region("cell", 8).base();
    let lock = Arc::new(InspMutex::new());
    let report = session.run(move |ctx| {
        let lock2 = Arc::clone(&lock);
        let worker = ctx.spawn(move |ctx| {
            for _ in 0..10 {
                lock2.lock(ctx);
                let v = ctx.read_u64(cell);
                ctx.write_u64(cell, v + 1);
                lock2.unlock(ctx);
            }
        });
        ctx.join(worker);
    });
    let stats = session.ingest_stats();
    // Complete delivery means the seal-time safety nets stay idle: every
    // synchronization *and* data edge resolved while the application was
    // running.
    assert_eq!(stats.sync_resolved_at_seal, 0, "{stats:?}");
    assert!(stats.sync_resolved_at_ingest > 0, "{stats:?}");
    assert_eq!(stats.data_resolved_at_seal, 0, "{stats:?}");
    assert!(stats.data_resolved_at_ingest > 0, "{stats:?}");
    assert!(report.cpg.stats().sync_edges > 0);
    assert!(report.cpg.stats().data_edges > 0);
}

#[test]
fn concurrent_pool_ingestion_matches_batch() {
    // Drive the builder directly from a 4-wide producer pool with the
    // runtime's lane routing (worker w owns threads with index % 4 == w):
    // the concurrent build must be identical to the batch oracle and leave
    // nothing for the seal-time safety nets.
    let sequences = inspector::core::testing::lock_heavy_sequences(8, 30, 12, 12);
    let reference = batch_build(&sequences);

    for shards in [1usize, 4, 8] {
        let builder = ShardedCpgBuilder::with_shards(shards);
        announce_all(&builder, &sequences);
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let builder = &builder;
                let lanes: Vec<Vec<SubComputation>> = sequences
                    .iter()
                    .enumerate()
                    .filter(|(t, _)| t % 4 == worker)
                    .map(|(_, seq)| seq.clone())
                    .collect();
                scope.spawn(move || {
                    let mut cursors: Vec<std::vec::IntoIter<SubComputation>> =
                        lanes.into_iter().map(|s| s.into_iter()).collect();
                    let mut progressed = true;
                    while progressed {
                        progressed = false;
                        for cursor in &mut cursors {
                            if let Some(sub) = cursor.next() {
                                builder.ingest(sub);
                                progressed = true;
                            }
                        }
                    }
                });
            }
        });
        let sealed = builder.seal();
        assert_identical(&sealed, &reference, &format!("pool4/shards={shards}"));
        let stats = builder.last_sealed_stats().expect("sealed");
        assert_eq!(stats.sync_resolved_at_seal, 0, "shards={shards}: {stats:?}");
        assert_eq!(stats.data_resolved_at_seal, 0, "shards={shards}: {stats:?}");
    }
}
