//! Property suite for the fault-tolerance layer: for any random schedule ×
//! deterministic fault plan (AUX overflow episodes, byte corruption, spill
//! write failures, ingest-worker death), the session must
//!
//! 1. **terminate** — no deadlock, no abort; a dead worker surfaces as a
//!    structured [`SessionError`] with the partial report attached,
//! 2. keep the graph **sound over the surviving prefix** — the sealed CPG
//!    equals the batch oracle rebuilt from its own per-thread sequences,
//! 3. **account every loss** — `RunStats::{gaps, lost_bytes,
//!    decode_degraded, spill_fallbacks, worker_failures}` add up, and
//!    `RunStats::degraded` is set exactly when some health field is nonzero,
//!
//! and with the **empty plan** every health field stays zero while the
//! existing equivalence properties keep holding (the fault hooks are
//! invisible unless armed).

use std::collections::BTreeSet;
use std::sync::Arc;

use inspector::core::graph::{Cpg, CpgBuilder};
use inspector::core::subcomputation::SubComputation;
use inspector::prelude::*;
use inspector::runtime::RunStats;
use proptest::prelude::*;

/// splitmix64, so each proptest case expands one seed into a full random
/// schedule + fault plan deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Rebuilds a batch CPG from the per-thread sequences stored in a streamed
/// graph's node set — the "oracle over the same prefix": whatever subset of
/// each thread's subs survived ingestion, the edges derived from it must be
/// exactly what the offline builder derives from that subset.
fn rebatch(cpg: &Cpg) -> Cpg {
    let mut builder = CpgBuilder::new();
    for thread in cpg.threads() {
        let seq: Vec<SubComputation> = cpg
            .thread_sequence(thread)
            .into_iter()
            .map(|id| cpg.node(id).expect("listed node exists").clone())
            .collect();
        builder.add_thread(seq);
    }
    builder.build()
}

fn edge_fingerprint(cpg: &Cpg) -> BTreeSet<String> {
    cpg.edges().map(|e| format!("{e:?}")).collect()
}

/// A test-unique spill directory so concurrent cases never collide.
fn spill_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "inspector-fault-tol-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Expands a seed into a random session shape: worker count, iterations,
/// branch density — every thread branches so every thread ships AUX data.
struct Shape {
    workers: u64,
    iterations: u64,
}

fn random_shape(rng: &mut Rng) -> Shape {
    Shape {
        workers: 1 + rng.below(3),     // 1..=3
        iterations: 5 + rng.below(16), // 5..=20
    }
}

/// Runs the shaped workload on `session` (mutex-contended counter
/// increments plus per-thread branches) and returns `try_run`'s outcome.
fn run_shaped(
    session: &InspectorSession,
    shape: &Shape,
) -> Result<RunReport, inspector::runtime::SessionError> {
    let region = session.map_region("counter", 8);
    let base = region.base();
    let lock = Arc::new(InspMutex::new());
    let workers = shape.workers;
    let iterations = shape.iterations;
    session.try_run(move |ctx| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                for i in 0..iterations {
                    ctx.branch((i + w) % 2 == 0);
                    lock.lock(ctx);
                    let v = ctx.read_u64(base);
                    ctx.write_u64(base, v + 1);
                    lock.unlock(ctx);
                }
            }));
        }
        for i in 0..iterations {
            ctx.branch(i % 3 == 0);
        }
        for h in handles {
            ctx.join(h);
        }
    })
}

/// The degraded bit is exactly the disjunction of the health fields.
fn degraded_bit_is_consistent(s: &RunStats) -> bool {
    s.degraded
        == (s.gaps != 0
            || s.lost_bytes != 0
            || s.decode_errors != 0
            || s.decode_degraded != 0
            || s.spill_fallbacks != 0
            || s.worker_failures != 0)
}

proptest! {
    #[test]
    fn any_fault_plan_terminates_with_sound_prefix_and_accounting(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let shape = random_shape(&mut rng);

        // Random fault plan: each dimension independently armed or off.
        let overflow_bytes = [0u64, 0, 64, 1024][rng.below(4) as usize];
        let corrupt_aux_at = [0u64, 0, 3, 40][rng.below(4) as usize];
        let fail_spill_write = [0u64, 0, 1][rng.below(3) as usize];
        let panic_worker = [0u64, 0, 1, 2][rng.below(4) as usize];
        let panic_at_batch = [1, 1, 2, 5][rng.below(4) as usize];
        let decode_online = rng.below(2) == 1;

        let plan = FaultPlan {
            corrupt_aux_at,
            overflow_bytes,
            fail_spill_write,
            panic_worker,
            panic_at_batch: if panic_worker > 0 { panic_at_batch } else { 0 },
            ..FaultPlan::default()
        };
        let mut config = SessionConfig::inspector()
            .with_decode_online(decode_online)
            .with_ingest_threads(1 + rng.below(2) as usize)
            .with_fault_plan(plan);
        if fail_spill_write > 0 {
            config = config.with_spill_threshold(1).with_spill_dir(spill_dir());
        }
        let lanes = config.ingest_threads as u64;

        let session = InspectorSession::new(config);
        // Property 1: this returns — a dead lane fails producers fast
        // instead of deadlocking them, surviving workers drain.
        let outcome = run_shaped(&session, &shape);

        let (report, failures) = match &outcome {
            Ok(report) => (report, 0u64),
            Err(err) => {
                prop_assert!(!err.failures.is_empty());
                prop_assert!(err.failures.iter().all(|f| f.message.contains("injected fault")));
                (err.report.as_ref(), err.failures.len() as u64)
            }
        };
        let s = &report.stats;

        // A worker can only die when the plan targets a live lane — and the
        // trigger fires for sure only when it sits on the lane's *first*
        // message (later trigger points may lie past the end of a short
        // run). Lane 0 always carries the main thread, so targeting it at
        // batch 1 is guaranteed death.
        let armed = panic_worker >= 1 && panic_worker <= lanes;
        if outcome.is_err() {
            prop_assert!(armed, "death without an armed lane: {:?} lanes {}", plan, lanes);
        }
        if armed && panic_worker == 1 && panic_at_batch == 1 {
            prop_assert!(outcome.is_err(), "plan {:?} lanes {}", plan, lanes);
        }
        let expect_death = outcome.is_err();
        prop_assert_eq!(s.worker_failures, failures);

        // Property 2: the graph over the surviving prefix equals the batch
        // oracle over the same prefix — faults lose suffixes, never edges
        // over what survived.
        prop_assert!(report.cpg.validate().is_ok());
        let reference = rebatch(&report.cpg);
        prop_assert_eq!(report.cpg.node_count(), reference.node_count());
        prop_assert_eq!(edge_fingerprint(&report.cpg), edge_fingerprint(&reference));

        // Property 3: loss accounting. Injected overflow is one episode of
        // `overflow_bytes` per reporting thread; threads whose Done was
        // lost with a dead worker drop out of the sums together with their
        // `threads` slot, so the per-thread relation still holds exactly.
        if overflow_bytes > 0 {
            prop_assert_eq!(s.gaps, s.threads as u64, "{:?}", s);
            prop_assert_eq!(s.lost_bytes, s.gaps * overflow_bytes, "{:?}", s);
        } else {
            prop_assert_eq!(s.gaps, 0, "{:?}", s);
            prop_assert_eq!(s.lost_bytes, 0, "{:?}", s);
        }
        // Lossy streams skip the cross-check into accounting; on a healthy
        // full run the decoded count must agree with the recorder.
        if decode_online && overflow_bytes > 0 && !expect_death {
            prop_assert!(s.decode_degraded > 0, "{:?}", s);
        }
        if decode_online && plan.is_empty() {
            prop_assert_eq!(s.decode_errors, 0, "{:?}", s);
            prop_assert_eq!(s.decode_mismatches, 0, "{:?}", s);
        }
        // A persistently failing spill device never lands a sub on disk —
        // the builder reverts to in-memory retention instead.
        if fail_spill_write > 0 {
            prop_assert_eq!(s.spilled_subs, 0, "{:?}", s);
        }
        prop_assert!(degraded_bit_is_consistent(s), "{:?}", s);
    }

    #[test]
    fn empty_plan_leaves_every_health_field_zero(seed in any::<u64>()) {
        let mut rng = Rng(seed ^ 0xFAB7);
        let shape = random_shape(&mut rng);
        let session = InspectorSession::new(
            SessionConfig::inspector().with_decode_online(true),
        );
        let report = run_shaped(&session, &shape).expect("no faults planned");
        let s = &report.stats;
        prop_assert!(!s.degraded, "{:?}", s);
        prop_assert_eq!(s.gaps, 0);
        prop_assert_eq!(s.lost_bytes, 0);
        prop_assert_eq!(s.decode_errors, 0);
        prop_assert_eq!(s.decode_mismatches, 0);
        prop_assert_eq!(s.decode_degraded, 0);
        prop_assert_eq!(s.spill_fallbacks, 0);
        prop_assert_eq!(s.worker_failures, 0);
        // The healthy cross-check actually ran and agreed.
        prop_assert_eq!(s.decoded_branches, s.pt.branches, "{:?}", s);
        // And the equivalence property is untouched by the hooks.
        let reference = rebatch(&report.cpg);
        prop_assert_eq!(edge_fingerprint(&report.cpg), edge_fingerprint(&reference));
        prop_assert!(report.cpg.validate().is_ok());
    }
}

// ---------------------------------------------------------------------------
// End-to-end AUX overflow: a *real* ring overflow (tiny full-trace ring, no
// injection), completing with loss accounted, not asserted away.
// ---------------------------------------------------------------------------

#[test]
fn tiny_ring_session_overflows_and_accounts_the_loss() {
    let mut config = SessionConfig::inspector().with_decode_online(true);
    config.aux_capacity = 256;
    let session = InspectorSession::new(config);
    let report = session.run(|ctx| {
        // No sync boundaries inside the loop: the ring only drains at the
        // final flush, so it must wrap — a genuine overflow episode.
        for i in 0..20_000u64 {
            ctx.branch(i % 2 == 0);
        }
    });
    let s = &report.stats;
    assert!(s.gaps > 0, "{s:?}");
    assert!(s.lost_bytes > 0, "{s:?}");
    // The producer-side counters flow to the report verbatim.
    assert_eq!(s.gaps, s.pt.gaps);
    assert_eq!(s.lost_bytes, s.pt.bytes_lost);
    // The lossy stream was cross-checked by accounting, not assertion.
    assert_eq!(s.decode_errors, 0, "OVF markers decode cleanly: {s:?}");
    assert_eq!(s.decode_mismatches, 0, "{s:?}");
    assert!(s.decode_degraded > 0, "{s:?}");
    assert!(s.degraded);
    // The graph over what was captured is intact.
    assert!(report.cpg.validate().is_ok());
}

#[test]
fn fault_env_knobs_reach_the_session() {
    // The harness contract: `INSPECTOR_FAULT_*` reaches the plan through
    // the same injected-lookup path every other knob uses.
    let config = SessionConfig::inspector().apply_env_with(|name| match name {
        "INSPECTOR_FAULT_OVERFLOW_BYTES" => Some("128".into()),
        _ => None,
    });
    assert_eq!(config.fault_plan.overflow_bytes, 128);
    let session = InspectorSession::new(config);
    let report = session.run(|ctx| {
        for i in 0..50u64 {
            ctx.branch(i % 2 == 0);
        }
    });
    assert_eq!(report.stats.gaps, report.stats.threads as u64);
    assert_eq!(report.stats.lost_bytes, 128 * report.stats.gaps);
    assert!(report.stats.degraded);
}
