//! Quickstart: record provenance for a small multithreaded program and
//! explore the resulting Concurrent Provenance Graph.
//!
//! This is the paper's Figure 1 example, slightly enlarged: two threads
//! update shared variables `x` and `y` under a lock; the CPG shows the
//! control, synchronization and data dependencies between their
//! sub-computations.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use inspector::prelude::*;

fn main() {
    let session = InspectorSession::new(SessionConfig::inspector());
    // Shared variables x and y, placed on separate pages to make the data
    // flow easy to see in the output.
    let x = session.map_region("x", 8).base();
    let y = session.map_region("y", 8).base();
    session.image().write_u64_direct(y, 1);

    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let lock_t1 = Arc::clone(&lock);
        let lock_t2 = Arc::clone(&lock);

        // Thread 1: x = ++y, later y = y / 2 (the T1.a / T1.b of Figure 1).
        let t1 = ctx.spawn(move |ctx| {
            lock_t1.lock(ctx);
            let flag = ctx.read_u64(y) == 0;
            ctx.branch(flag);
            let new_y = ctx.read_u64(y) + 1;
            ctx.write_u64(y, new_y);
            ctx.write_u64(x, if flag { new_y } else { new_y + 5 });
            lock_t1.unlock(ctx);

            lock_t1.lock(ctx);
            let v = ctx.read_u64(y);
            ctx.write_u64(y, v / 2);
            lock_t1.unlock(ctx);
        });

        // Thread 2: y = 2 * x (the T2.a of Figure 1).
        let t2 = ctx.spawn(move |ctx| {
            lock_t2.lock(ctx);
            let v = ctx.read_u64(x);
            ctx.write_u64(y, 2 * v);
            lock_t2.unlock(ctx);
        });

        ctx.join(t1);
        ctx.join(t2);
    });

    println!("final x = {}", session.image().read_u64_direct(x));
    println!("final y = {}", session.image().read_u64_direct(y));
    println!();

    let stats = report.cpg.stats();
    println!("Concurrent Provenance Graph:");
    println!("  sub-computations : {}", stats.nodes);
    println!("  threads          : {}", stats.threads);
    println!("  control edges    : {}", stats.control_edges);
    println!("  sync edges       : {}", stats.sync_edges);
    println!("  data edges       : {}", stats.data_edges);
    println!("  branches traced  : {}", stats.branches);
    println!();

    // Explain how the final value of y came to be: the backward data slice
    // rooted at y's last writers.
    let query = ProvenanceQuery::new(&report.cpg);
    let y_page = PageId::new(y.raw() / 4096);
    println!("provenance of y (page {y_page}):");
    for sub in query.explain_page(y_page) {
        let node = report.cpg.node(sub).expect("node in graph");
        println!(
            "  {sub}  reads {:?}  writes {:?}",
            node.read_set.iter().map(|p| p.number()).collect::<Vec<_>>(),
            node.write_set
                .iter()
                .map(|p| p.number())
                .collect::<Vec<_>>(),
        );
    }
    println!();
    println!(
        "provenance log: {} bytes ({}x compressible)",
        report.space.log_bytes, report.space.compression_ratio as u64
    );
}
