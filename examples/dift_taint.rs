//! Case study 2 (paper §VIII, *Security*): Dynamic Information Flow Tracking
//! (DIFT) on top of the provenance graph.
//!
//! A sensitive input file is mapped into the traced program; one worker
//! derives a report from it, another produces an independent public value.
//! Before "sending" each output buffer, a policy checker asks the taint
//! tracker whether the buffer (transitively) depends on the sensitive input
//! — the leaky output is rejected, the clean one is allowed.
//!
//! Run with: `cargo run --example dift_taint`

use std::sync::Arc;

use inspector::prelude::*;

fn main() {
    let session = InspectorSession::new(SessionConfig::inspector());

    // The sensitive input: a "credit card database".
    let secret: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let secret_region = session.map_input("cards.db", &secret);
    let secret_base = secret_region.base();

    // Two output buffers: a report derived from the secret and a public
    // counter that never touches it.
    let leaky_out = session.map_region("report-buffer", 8).base();
    let clean_out = session.map_region("public-buffer", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let lock2 = Arc::clone(&lock);
        let worker = ctx.spawn(move |ctx| {
            // Derive a "summary" of the sensitive data.
            let mut sum = 0u64;
            for i in 0..512 {
                sum += ctx.read_u8(secret_base.add(i)) as u64;
            }
            lock2.lock(ctx);
            ctx.write_u64(leaky_out, sum);
            lock2.unlock(ctx);
        });
        // Independent public computation.
        lock.lock(ctx);
        ctx.write_u64(clean_out, 42);
        lock.unlock(ctx);
        ctx.join(worker);
    });

    // Taint every page of the mapped input file. The conservative policy
    // (taint follows intra-thread control flow) is needed because the
    // summary value crosses the lock acquisition in a register, invisible to
    // page-granularity tracking.
    let mut tracker = TaintTracker::new().with_control_flow(true);
    let first_page = PageId::new(secret_base.raw() / 4096);
    tracker.taint_page_range(first_page, secret_region.page_count() as u64, TaintLabel(1));

    let taint = tracker.propagate(&report.cpg);
    println!(
        "taint propagation: {} tainted sub-computations, {} tainted pages",
        taint.tainted_sub_count(),
        taint.tainted_pages.len()
    );
    println!();

    // Policy check at the output system call.
    for (name, addr) in [("report-buffer", leaky_out), ("public-buffer", clean_out)] {
        let page = PageId::new(addr.raw() / 4096);
        match tracker.check_output(&report.cpg, &[page]) {
            Ok(()) => println!("ALLOW  write({name}) — no sensitive data reaches it"),
            Err(violation) => println!("BLOCK  write({name}) — {violation}"),
        }
    }
}
