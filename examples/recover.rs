//! Offline crash recovery: rebuild the maximal consistent-prefix CPG from
//! a (possibly crashed) session's spill directory.
//!
//! With an argument, recovers that directory and prints the report:
//!
//! ```text
//! cargo run --example recover -- /path/to/inspector-spill-1234-0
//! ```
//!
//! Without arguments it is a self-contained demo: it records a spilling
//! session that "crashes" mid-append (via the deterministic fault plan's
//! `crash_at_spill` trigger — the on-disk image ends in a torn record,
//! exactly as a killed process would leave it), then recovers the
//! directory and shows what survived.

use inspector::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, cleanup) = match args.first() {
        Some(path) => (std::path::PathBuf::from(path), false),
        None => (demo_crashed_session(), true),
    };

    println!("recovering {}", dir.display());
    let recovery = recover_session(&dir).expect("recovery I/O failed");
    print_report(&recovery);

    if cleanup {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Records a two-thread spilling run that simulates a crash after 40
/// spilled records, returning the surviving spill directory.
fn demo_crashed_session() -> std::path::PathBuf {
    let config = SessionConfig::inspector()
        .with_spill_threshold(16)
        .with_spill_durability(SpillDurability::Flush)
        .with_fault_plan(FaultPlan {
            crash_at_spill: 40,
            ..FaultPlan::default()
        });
    let session = InspectorSession::new(config);
    let region = session.map_region("demo", 1 << 16).base();
    let report = session.run(move |ctx| {
        let lock = std::sync::Arc::new(InspMutex::new());
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let lock = std::sync::Arc::clone(&lock);
                ctx.spawn(move |ctx| {
                    for i in 0..200u64 {
                        let slot = region.add((w * 256 + (i % 32)) * 8);
                        // Each lock/unlock pair closes a sub-computation,
                        // so the shards fill up and spill as they would in
                        // a long-running traced program.
                        lock.lock(ctx);
                        let v = ctx.read_u64(slot);
                        ctx.write_u64(slot, v + i);
                        ctx.branch(i % 3 == 0);
                        lock.unlock(ctx);
                    }
                })
            })
            .collect();
        for w in workers {
            ctx.join(w);
        }
    });
    println!(
        "demo session sealed: {} nodes, degraded={} (spill_fallbacks={})",
        report.cpg.node_count(),
        report.stats.degraded,
        report.stats.spill_fallbacks
    );
    session
        .spill_directory()
        .expect("spilling session has a directory")
}

fn print_report(recovery: &Recovery) {
    let r = &recovery.report;
    println!();
    println!("recovered graph:");
    println!("  nodes             : {}", recovery.cpg.node_count());
    println!("  edges             : {}", recovery.cpg.edge_count());
    println!("  threads           : {}", recovery.cpg.threads().len());
    println!();
    println!("recovery report:");
    println!("  manifest found    : {}", r.manifest_found);
    println!("  manifest clean    : {}", r.manifest_clean);
    println!("  session id        : {:#x}", r.session_id);
    println!("  durable frontier  : {:?}", r.durable_frontier);
    println!("  consistent cut    : {:?}", r.consistent_frontier);
    println!("  recovered nodes   : {}", r.recovered_nodes);
    println!("  excluded nodes    : {}", r.excluded_nodes);
    println!("  edge records      : {}", r.recovered_edge_records);
    println!();
    println!("byte accounting (total = headers + recovered + lost):");
    println!("  total bytes       : {}", r.total_bytes);
    println!("  header bytes      : {}", r.header_bytes);
    println!("  recovered bytes   : {}", r.recovered_bytes);
    println!("  lost bytes        : {}", r.lost_bytes);
    println!("    torn records    : {}", r.torn_records);
    println!("    crc failures    : {}", r.crc_failures);
    println!("    decode failures : {}", r.decode_failures);
    println!("    bad headers     : {}", r.bad_headers);
    println!("    unmanifested    : {}", r.unmanifested_bytes);
    println!("  missing segments  : {}", r.missing_segments);
    println!("  missing bytes     : {}", r.missing_bytes);
    println!();
    println!("degraded: {}", r.degraded());
}
