//! Case study 3 (paper §VIII, *Efficiency*): memory-access profiling for
//! NUMA placement decisions.
//!
//! The CPG's read/write sets directly give the per-page access pattern of
//! every thread. This example runs a small sharded workload, then derives a
//! placement recommendation for each page: pages touched by a single thread
//! should live on that thread's NUMA node, pages shared by many threads are
//! candidates for interleaving (or indicate false sharing to fix).
//!
//! Run with: `cargo run --example numa_profile`

use std::sync::Arc;

use inspector::prelude::*;

fn main() {
    const WORKERS: usize = 4;
    const PER_WORKER_PAGES: usize = 4;

    let session = InspectorSession::new(SessionConfig::inspector());
    // Each worker owns a private shard; all workers also update one shared
    // statistics page.
    let shard_bytes = (PER_WORKER_PAGES * 4096) as u64;
    let shards: Vec<_> = (0..WORKERS)
        .map(|w| session.map_region(format!("shard-{w}"), shard_bytes).base())
        .collect();
    let stats_page = session.map_region("global-stats", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let mut handles = Vec::new();
        for (w, &shard) in shards.iter().enumerate() {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                // Touch every page of the worker's own shard many times.
                for round in 0..8u64 {
                    for p in 0..PER_WORKER_PAGES as u64 {
                        let addr = shard.add(p * 4096);
                        let v = ctx.read_u64(addr);
                        ctx.write_u64(addr, v + round + w as u64);
                    }
                    ctx.branch(round % 2 == 0);
                }
                // And bump the shared statistics counter.
                lock.lock(ctx);
                let v = ctx.read_u64(stats_page);
                ctx.write_u64(stats_page, v + 1);
                lock.unlock(ctx);
            }));
        }
        for h in handles {
            ctx.join(h);
        }
    });

    let query = ProvenanceQuery::new(&report.cpg);
    let summary = query.page_summary();

    println!(
        "{:<12}{:>10}{:>10}   placement recommendation",
        "page", "readers", "writers"
    );
    for (page, access) in &summary {
        let mut threads: std::collections::BTreeSet<ThreadId> =
            access.readers.keys().copied().collect();
        threads.extend(access.writers.keys().copied());
        let recommendation = if threads.len() == 1 {
            format!("bind to node of {}", threads.iter().next().unwrap())
        } else {
            format!("shared by {} threads — interleave", threads.len())
        };
        println!(
            "{:<12}{:>10}{:>10}   {}",
            page.number(),
            access.readers.len(),
            access.writers.len(),
            recommendation
        );
    }
    println!();
    println!(
        "{} of {} touched pages are thread-private",
        summary.values().filter(|a| !a.is_shared()).count(),
        summary.len()
    );
}
