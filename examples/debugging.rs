//! Case study 1 (paper §VIII, *Dependability*): using provenance to debug a
//! multithreaded program.
//!
//! The program has an intentional synchronization bug: one worker updates a
//! shared accumulator without taking the lock. Ordinary debugging shows
//! *what* the final value is; the CPG shows *why* — the backward slice of
//! the corrupted page lists exactly which sub-computations touched it, and
//! the unordered-conflict query pinpoints the pair of sub-computations that
//! raced.
//!
//! Run with: `cargo run --example debugging`

use std::sync::Arc;

use inspector::prelude::*;

fn main() {
    let session = InspectorSession::new(SessionConfig::inspector());
    let total = session.map_region("total", 8).base();
    let scratch = session.map_region("scratch", 8).base();
    let lock = Arc::new(InspMutex::new());

    let report = session.run(move |ctx| {
        let mut handles = Vec::new();
        for worker in 0..3u64 {
            let lock = Arc::clone(&lock);
            handles.push(ctx.spawn(move |ctx| {
                // Each worker adds its contribution to the shared total.
                // Worker 2 "forgets" the lock — the classic lost-update bug.
                let contribution = (worker + 1) * 10;
                if worker == 2 {
                    let v = ctx.read_u64(total);
                    ctx.write_u64(scratch, v); // unrelated red herring
                    ctx.write_u64(total, v + contribution);
                } else {
                    lock.lock(ctx);
                    let v = ctx.read_u64(total);
                    ctx.write_u64(total, v + contribution);
                    lock.unlock(ctx);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }
    });

    let final_total = session.image().read_u64_direct(total);
    println!("final total = {final_total} (expected 60 if fully synchronized)");
    println!();

    let query = ProvenanceQuery::new(&report.cpg);
    let total_page = PageId::new(total.raw() / 4096);

    println!("who touched the accumulator page?");
    for sub in query.writers_of(total_page) {
        println!("  writer: {sub}");
    }
    for sub in query.readers_of(total_page) {
        println!("  reader: {sub}");
    }
    println!();

    println!("why does it have this value? (backward data slice of the last writers)");
    for sub in query.explain_page(total_page) {
        println!("  {sub}");
    }
    println!();

    println!("unordered conflicting accesses (potential data races):");
    let conflicts = query.unordered_conflicts();
    if conflicts.is_empty() {
        println!("  none — the execution was fully ordered by synchronization");
    }
    for (a, b, pages) in conflicts {
        let pages: Vec<u64> = pages.iter().map(|p| p.number()).collect();
        println!("  {a} <-> {b} on pages {pages:?}");
    }
}
